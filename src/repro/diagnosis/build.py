"""Dictionary compilation: campaign results -> FaultDictionary.

Two input paths share one compiler:

* :func:`build_dictionary` runs (or cache-hits) a campaign through
  :class:`~repro.campaign.runner.CampaignRunner` and compiles its
  :class:`~repro.core.path.PathResult` — the second build from the
  same campaign is all store hits, and the compiled dictionary itself
  is cached in the store under ``dictionaries/<key>.json``, keyed by
  the campaign fingerprint (so any spec / fault-model / code-version
  change misses cleanly);
* :func:`build_from_store` streams a populated store's records via
  :meth:`~repro.campaign.store.ResultsStore.iter_records` — one walk,
  no re-keying — labelling entries by the ``task_id`` metadata the
  runner writes.

Priors follow the paper's global scaling: a class's prior is its
macro's area-and-yield weight times the class magnitude share, then
normalised over the dictionary.  Tolerance envelopes come from the
good-space corner spread: a feature whose acceptance window is
dominated by process variation (window half-width far above the tester
floor) is a less trustworthy diagnostic bit and is down-weighted.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.events import DictionaryBuilt, EventBus
from ..campaign.plan import comparator_spec
from ..campaign.runner import (CampaignOptions, CampaignResult,
                               CampaignRunner)
from ..campaign.store import ResultsStore, dictionary_key
from ..campaign.tasks import get_engine
from ..core.path import PathConfig, PathResult
from ..faultsim.goodspace import (FLOOR_IDDQ, FLOOR_IINPUT, FLOOR_IVDD,
                                  FLOOR_IVREF)
from ..faultsim.signatures import signature_feature_names
from ..macrotest.coverage import DetectionRecord
from .dictionary import (DICTIONARY_VERSION, DictionaryEntry,
                         FaultDictionary)

#: tester floor per measured quantity (the goodspace constants)
_FLOORS = {"ivdd": FLOOR_IVDD, "iddq": FLOOR_IDDQ,
           "iin": FLOOR_IINPUT, "ivref": FLOOR_IVREF}

#: lower clamp on a feature's tolerance weight: even the widest
#: process spread leaves a measurement some diagnostic value
MIN_TOLERANCE = 0.05


def tolerance_envelope(config: PathConfig) -> Tuple[float, ...]:
    """Per-feature match weights from the good-space corner spread.

    Voltage and coarse-mechanism features are exact digital verdicts
    (weight 1.0).  Each fine-grained current feature is weighted by
    ``floor / window_halfwidth`` clipped to [:data:`MIN_TOLERANCE`, 1]:
    a window as tight as the tester floor is fully trusted, one blown
    up by corner spread is nearly noise.  The comparator good space is
    compiled once per process (the campaign planner's engine cache),
    so this costs nothing after a build.
    """
    gs = get_engine(comparator_spec(config)).good_space()
    weights = []
    for name in signature_feature_names():
        parts = name.split(":")
        if parts[0] != "current":
            weights.append(1.0)
            continue
        quantity, phase, pol = parts[1], parts[2], parts[3]
        window = gs.windows[(quantity, phase, pol)]
        halfwidth = (window.hi - window.lo) / 2.0
        floor = _FLOORS[quantity]
        if halfwidth <= floor:
            weights.append(1.0)
        else:
            weights.append(max(MIN_TOLERANCE, floor / halfwidth))
    return tuple(weights)


def labeled_records(result: PathResult
                    ) -> List[Tuple[str, str, float, DetectionRecord]]:
    """Flatten a path result into (label, macro, weight-scale, record).

    Labels are campaign task ids (``"<macro>:<kind>:<index>"``); the
    weight scale is the macro's global area-and-yield weight divided by
    its total fault count, so ``scale * record.count`` is the class's
    unnormalised global probability.  The decoder's ``noncat_result``
    aliases its ``result`` (one logic pass covers both views), so the
    alias is skipped to avoid double-counting.
    """
    out: List[Tuple[str, str, float, DetectionRecord]] = []
    for name, analysis in result.macros.items():
        kinds = [("cat", analysis.result)]
        if analysis.noncat_result is not None and \
                analysis.noncat_result is not analysis.result:
            kinds.append(("noncat", analysis.noncat_result))
        for kind, macro_result in kinds:
            if macro_result.total_faults == 0:
                continue
            scale = macro_result.weight / macro_result.total_faults
            for index, record in enumerate(macro_result.records):
                out.append((f"{name}:{kind}:{index}", name, scale,
                            record))
    return out


def compile_dictionary(labeled: Sequence[Tuple[str, str, float,
                                               DetectionRecord]],
                       tolerance: Optional[Sequence[float]] = None,
                       meta: Optional[Dict] = None) -> FaultDictionary:
    """Compile labelled records into a dictionary (the pure core).

    Classes with all-zero signatures are undetectable and become
    ``meta["undetected"]`` labels instead of entries; priors are
    normalised over the remaining entries.
    """
    features = signature_feature_names()
    if tolerance is None:
        tolerance = (1.0,) * len(features)
    entries: List[DictionaryEntry] = []
    undetected: List[str] = []
    raw_priors: List[float] = []
    for label, macro, scale, record in labeled:
        vector = record.signature_vector()
        if not vector.any():
            undetected.append(label)
            continue
        entries.append(DictionaryEntry(
            label=label, macro=macro,
            vector=tuple(float(v) for v in vector),
            prior=0.0, count=record.count,
            fault_type=record.fault_type))
        raw_priors.append(scale * record.count)
    total = sum(raw_priors)
    if total > 0:
        entries = [dataclasses.replace(e, prior=p / total)
                   for e, p in zip(entries, raw_priors)]
    full_meta = dict(meta or {})
    full_meta["undetected"] = sorted(undetected)
    return FaultDictionary(features=features,
                           tolerance=tuple(float(t) for t in tolerance),
                           entries=tuple(entries), meta=full_meta)


def compile_from_campaign(campaign: CampaignResult,
                          tolerance: Optional[Sequence[float]] = None
                          ) -> FaultDictionary:
    """Compile a finished campaign's result into a dictionary."""
    result = campaign.path_result
    if tolerance is None:
        tolerance = tolerance_envelope(result.config)
    from ..campaign.store import STORE_VERSION
    meta = {
        "source": "campaign",
        "fingerprint": campaign.fingerprint,
        "store_version": STORE_VERSION,
        "config": result.config.to_dict(),
    }
    return compile_dictionary(labeled_records(result),
                              tolerance=tolerance, meta=meta)


def dictionary_for_campaign(campaign: CampaignResult,
                            options: Optional[CampaignOptions] = None,
                            bus: Optional[EventBus] = None,
                            started: Optional[float] = None
                            ) -> FaultDictionary:
    """Compile (or cache-hit) the dictionary of a finished campaign.

    The post-campaign half of :func:`build_dictionary`, reusable for
    campaign results produced elsewhere — notably a distributed
    coordinator's merged :class:`~repro.campaign.runner.CampaignResult`,
    which carries the same fingerprint as a single-host run and so
    shares its cached dictionary blob.  When ``options.cache_dir``
    names a store, the compiled dictionary is persisted under
    ``dictionaries/<key>.json`` keyed by the campaign fingerprint and
    repeat builds are served from that blob.  Emits
    :class:`~repro.campaign.events.DictionaryBuilt` on the bus.
    """
    options = options or CampaignOptions()
    bus = bus or EventBus()
    if started is None:
        started = time.perf_counter()

    store: Optional[ResultsStore] = None
    cache_dir = options.resolved_cache_dir()
    if cache_dir is not None:
        store = ResultsStore(cache_dir, version=options.store_version)
    key = None
    if store is not None and campaign.fingerprint:
        key = dictionary_key(campaign.fingerprint, DICTIONARY_VERSION,
                             version=options.store_version)
        payload = store.get_dictionary(key)
        if payload is not None:
            try:
                dictionary = FaultDictionary.from_dict(payload)
            except Exception:
                dictionary = None
            if dictionary is not None:
                bus.emit(DictionaryBuilt(
                    classes=len(dictionary),
                    undetected=len(dictionary.meta.get("undetected",
                                                       ())),
                    macros=dictionary.macros,
                    features=len(dictionary.features),
                    source="cache",
                    wall=time.perf_counter() - started))
                return dictionary

    dictionary = compile_from_campaign(campaign)
    if store is not None and key is not None:
        store.put_dictionary(key, dictionary.to_dict())
    bus.emit(DictionaryBuilt(
        classes=len(dictionary),
        undetected=len(dictionary.meta.get("undetected", ())),
        macros=dictionary.macros,
        features=len(dictionary.features), source="computed",
        wall=time.perf_counter() - started))
    return dictionary


def build_dictionary(config: Optional[PathConfig] = None,
                     options: Optional[CampaignOptions] = None,
                     bus: Optional[EventBus] = None,
                     macros: Optional[Sequence[str]] = None
                     ) -> FaultDictionary:
    """Run (or cache-hit) a campaign and compile its dictionary.

    The campaign runs through
    :class:`~repro.campaign.runner.CampaignRunner`; compilation and
    dictionary-blob caching are delegated to
    :func:`dictionary_for_campaign`.
    """
    config = config or PathConfig()
    options = options or CampaignOptions()
    bus = bus or EventBus()
    started = time.perf_counter()
    runner = CampaignRunner(config, options, bus=bus)
    campaign = runner.run(macros)
    return dictionary_for_campaign(campaign, options=options, bus=bus,
                                   started=started)


def build_from_store(store: ResultsStore,
                     tolerance: Optional[Sequence[float]] = None,
                     bus: Optional[EventBus] = None) -> FaultDictionary:
    """Compile a dictionary by streaming a populated store.

    No campaign run, no re-keying: one
    :meth:`~repro.campaign.store.ResultsStore.iter_records` walk.
    Records without ``task_id`` metadata fall back to their content
    key as the label; priors are magnitude-proportional (the macro
    area weights are not recoverable from the store alone).
    """
    started = time.perf_counter()
    bus = bus or EventBus()
    labeled = []
    for stored in store.iter_records():
        label = stored.meta.get("task_id") or stored.key
        macro = stored.meta.get("macro") or label.split(":")[0]
        labeled.append((label, macro, 1.0, stored.record))
    meta = {"source": "store", "store_version": store.version}
    dictionary = compile_dictionary(labeled, tolerance=tolerance,
                                    meta=meta)
    bus.emit(DictionaryBuilt(
        classes=len(dictionary),
        undetected=len(dictionary.meta.get("undetected", ())),
        macros=dictionary.macros,
        features=len(dictionary.features), source="computed",
        wall=time.perf_counter() - started))
    return dictionary
