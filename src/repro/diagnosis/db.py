"""SQLite-indexed diagnosis results backend.

Every diagnosis the service performs used to vanish with the HTTP
response; analytics that wanted history had to re-parse whatever JSON
blobs someone thought to keep.  This module gives the serving layer,
the ``report`` CLI and ``/v1/metrics`` one shared, indexed store
instead (the DAVOS ``Datamanager`` pattern: a small reflected data
model that the simulator writes once and every reporting surface
queries).

Schema (``SCHEMA_VERSION`` 1):

* ``batches`` — one row per recorded diagnose call: which dictionary
  (name + reload generation) served it, how many queries, the wall
  time, and the verdict counts;
* ``verdicts`` — one row per query: the verdict, the top candidate
  (label, macro, distance, posterior) when there is one; indexed by
  verdict and by top label so "which defect classes do we actually
  see in returns?" is one ``GROUP BY``, not a JSON crawl.

Connections are per thread (and per process — a forked serving
worker never reuses its parent's handle): SQLite serializes writers
itself, and ``PRAGMA busy_timeout`` makes a writer that meets the
write lock wait instead of failing with ``database is locked``.  That
is what lets every keep-alive handler thread — and every process of a
multi-process serving fleet — share one results file: no
Python-level lock serializes unrelated inserts, WAL mode keeps
readers (an analyst's ``sqlite3`` session, the ``report`` CLI against
a live service's file) off the writers' backs.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
import weakref
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .match import Diagnosis

#: bump when the table layout changes; a mismatched existing file is
#: refused (never silently migrated)
SCHEMA_VERSION = 1

#: how long a writer waits on SQLite's write lock before giving up
#: (milliseconds); generous because fleet workers share one WAL file
BUSY_TIMEOUT_MS = 10_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS batches (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    ts         REAL    NOT NULL,
    dictionary TEXT    NOT NULL,
    version    INTEGER NOT NULL,
    n_queries  INTEGER NOT NULL,
    wall       REAL    NOT NULL,
    matched    INTEGER NOT NULL,
    ambiguous  INTEGER NOT NULL,
    unmatched  INTEGER NOT NULL,
    passed     INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_batches_dictionary
    ON batches (dictionary);
CREATE INDEX IF NOT EXISTS idx_batches_ts ON batches (ts);
CREATE TABLE IF NOT EXISTS verdicts (
    batch_id  INTEGER NOT NULL REFERENCES batches (id),
    seq       INTEGER NOT NULL,
    verdict   TEXT    NOT NULL,
    top_label TEXT,
    top_macro TEXT,
    distance  REAL,
    posterior REAL,
    PRIMARY KEY (batch_id, seq)
);
CREATE INDEX IF NOT EXISTS idx_verdicts_verdict
    ON verdicts (verdict);
CREATE INDEX IF NOT EXISTS idx_verdicts_label
    ON verdicts (top_label);
"""


class DiagnosisDBError(RuntimeError):
    """Raised for an unusable results database (schema mismatch,
    unreadable file)."""


class DiagnosisDB:
    """The service's persistent, queryable diagnosis log.

    Thread-safe and multi-process-safe: each thread gets its own
    connection (created on first use, with ``busy_timeout`` set so
    concurrent writers queue on SQLite's write lock instead of
    erroring), and a connection is never carried across a fork — a
    worker process inheriting this object lazily opens fresh handles.
    Use as a context manager or call :meth:`close`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._local = threading.local()
        self._conns_lock = threading.Lock()
        #: (owner pid, weakref to owner thread, connection) — pruned
        #: on every open so a thread-per-connection HTTP server does
        #: not accumulate one fd per client connection it ever served
        self._conns: List[Tuple[
            int, "weakref.ref[threading.Thread]",
            sqlite3.Connection]] = []
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            conn = self._connection()
            conn.executescript(_SCHEMA)
            self._check_schema(conn)
            conn.commit()
        except sqlite3.Error as exc:
            raise DiagnosisDBError(
                f"cannot open diagnosis db {self.path}: {exc}"
                ) from exc

    def _connection(self) -> sqlite3.Connection:
        """This thread's connection in this process, opened on first
        use.

        The pid guard matters for the serving fleet: a pre-forked
        worker inherits the supervisor's ``DiagnosisDB`` object, and
        sharing the parent's SQLite handle across the fork corrupts
        its internal state — the child must open its own.
        """
        pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is not None and getattr(self._local, "pid",
                                        None) == pid:
            return conn
        if self._closed:
            raise DiagnosisDBError(
                f"diagnosis db {self.path} is closed")
        # autocommit mode: transactions are explicit (BEGIN
        # IMMEDIATE), so a write never deadlocks upgrading a
        # deferred read lock.  check_same_thread=False only so
        # close() can reap every thread's connection; queries stay
        # on the opening thread via the thread-local.
        conn = sqlite3.connect(str(self.path),
                               isolation_level=None,
                               check_same_thread=False)
        conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        self._local.conn = conn
        self._local.pid = pid
        with self._conns_lock:
            self._reap_locked(pid)
            self._conns.append(
                (pid, weakref.ref(threading.current_thread()), conn))
        return conn

    def _reap_locked(self, pid: int) -> None:
        """Release connections whose owning thread has exited.

        A ThreadingHTTPServer spawns one handler thread per client
        connection; without this, every client that ever touched the
        DB would pin an open SQLite handle (fd + WAL mmap) until
        :meth:`close`, and a long-running worker under connection
        churn would exhaust its fd limit.  Entries from another pid
        are the pre-fork parent's — its handles are not ours to
        flush, so they are dropped unclosed (the child never used
        them; the parent still holds its own copies).
        """
        live = []
        for entry in self._conns:
            owner_pid, thread_ref, conn = entry
            if owner_pid != pid:
                continue
            thread = thread_ref()
            if thread is not None and thread.is_alive():
                live.append(entry)
                continue
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._conns = live

    def _check_schema(self, conn: sqlite3.Connection) -> None:
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
                ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('schema_version', ?)", (str(SCHEMA_VERSION),))
            elif int(row[0]) != SCHEMA_VERSION:
                raise DiagnosisDBError(
                    f"diagnosis db {self.path} has schema version "
                    f"{row[0]}, this code wants {SCHEMA_VERSION}")
        finally:
            conn.execute("COMMIT")

    def __enter__(self) -> "DiagnosisDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._closed = True
        pid = os.getpid()
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for owner_pid, _thread_ref, conn in conns:
            if owner_pid != pid:  # the pre-fork parent's handle;
                continue          # not ours to close
            try:
                conn.close()
            except sqlite3.Error:  # a thread's conn may already be
                pass               # dead; closing is best-effort
        self._local = threading.local()

    # -- writes -------------------------------------------------------------

    def record_batch(self, dictionary: str, version: int,
                     diagnoses: Sequence[Diagnosis], wall: float,
                     ts: Optional[float] = None) -> int:
        """Record one served diagnose call; returns the batch id."""
        counts = {"matched": 0, "ambiguous": 0,
                  "escape_unmatched": 0, "pass": 0}
        rows = []
        for seq, diagnosis in enumerate(diagnoses):
            counts[diagnosis.verdict] = \
                counts.get(diagnosis.verdict, 0) + 1
            top = diagnosis.top
            rows.append((seq, diagnosis.verdict,
                         top.label if top else None,
                         top.macro if top else None,
                         top.distance if top else None,
                         top.posterior if top else None))
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            cursor = conn.execute(
                "INSERT INTO batches (ts, dictionary, version, "
                "n_queries, wall, matched, ambiguous, unmatched, "
                "passed) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (time.time() if ts is None else ts,
                 dictionary, int(version), len(rows), float(wall),
                 counts["matched"], counts["ambiguous"],
                 counts["escape_unmatched"], counts["pass"]))
            batch_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO verdicts (batch_id, seq, verdict, "
                "top_label, top_macro, distance, posterior) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(batch_id,) + row for row in rows])
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        return batch_id

    # -- reads --------------------------------------------------------------

    def summary(self) -> Dict:
        """Service-lifetime totals (the ``/v1/metrics`` ``db``
        block)."""
        row = self._connection().execute(
            "SELECT COUNT(*), COALESCE(SUM(n_queries), 0), "
            "COALESCE(SUM(wall), 0.0), "
            "COALESCE(SUM(matched), 0), "
            "COALESCE(SUM(ambiguous), 0), "
            "COALESCE(SUM(unmatched), 0), "
            "COALESCE(SUM(passed), 0) FROM batches").fetchone()
        batches, queries, wall, matched, ambiguous, unmatched, \
            passed = row
        return {
            "batches": batches, "queries": queries,
            "wall_time": wall, "matched": matched,
            "ambiguous": ambiguous, "unmatched": unmatched,
            "passed": passed,
            "queries_per_second": queries / wall if wall > 0 else 0.0,
        }

    def per_dictionary(self) -> List[Dict]:
        """Resolution stats per (dictionary, reload generation)."""
        rows = self._connection().execute(
            "SELECT dictionary, version, COUNT(*), "
            "SUM(n_queries), SUM(wall), SUM(matched), "
            "SUM(ambiguous), SUM(unmatched), SUM(passed) "
            "FROM batches GROUP BY dictionary, version "
            "ORDER BY dictionary, version").fetchall()
        out = []
        for (name, version, batches, queries, wall, matched,
             ambiguous, unmatched, passed) in rows:
            failing = matched + ambiguous + unmatched
            out.append({
                "dictionary": name, "version": version,
                "batches": batches, "queries": queries,
                "wall_time": wall, "matched": matched,
                "ambiguous": ambiguous, "unmatched": unmatched,
                "passed": passed,
                "resolution_rate":
                    matched / failing if failing else 0.0,
            })
        return out

    def top_classes(self, limit: int = 10,
                    dictionary: Optional[str] = None) -> List[Dict]:
        """Most-diagnosed defect classes — the field-return Pareto."""
        sql = ("SELECT v.top_label, v.top_macro, COUNT(*) AS hits, "
               "AVG(v.distance) FROM verdicts v "
               "JOIN batches b ON b.id = v.batch_id "
               "WHERE v.top_label IS NOT NULL "
               "AND v.verdict IN ('matched', 'ambiguous')")
        args: tuple = ()
        if dictionary is not None:
            sql += " AND b.dictionary = ?"
            args = (dictionary,)
        sql += (" GROUP BY v.top_label, v.top_macro "
                "ORDER BY hits DESC, v.top_label LIMIT ?")
        rows = self._connection().execute(
            sql, args + (int(limit),)).fetchall()
        return [{"label": label, "macro": macro, "hits": hits,
                 "mean_distance": mean_distance}
                for label, macro, hits, mean_distance in rows]

    def recent_batches(self, limit: int = 20) -> List[Dict]:
        """The newest recorded batches, newest first."""
        rows = self._connection().execute(
            "SELECT id, ts, dictionary, version, n_queries, "
            "wall, matched, ambiguous, unmatched, passed "
            "FROM batches ORDER BY id DESC LIMIT ?",
            (int(limit),)).fetchall()
        keys = ("id", "ts", "dictionary", "version", "n_queries",
                "wall", "matched", "ambiguous", "unmatched", "passed")
        return [dict(zip(keys, row)) for row in rows]

    def verdict_counts(self) -> Dict[str, int]:
        """Global verdict histogram from the per-query table."""
        rows = self._connection().execute(
            "SELECT verdict, COUNT(*) FROM verdicts "
            "GROUP BY verdict").fetchall()
        return {verdict: count for verdict, count in rows}
