"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1|table2|table3|fig3|fig4|fig5`` — regenerate a paper artifact.
* ``campaign`` — run a full managed campaign (all macros), print the
  coverage summary and campaign metrics, optionally save results.
* ``macros`` — per-macro current detectability table.
* ``layout <macro>`` — ASCII rendering of a macro's layout.
* ``cost`` — defect-oriented vs specification-oriented tester time.
* ``quality`` — shipped-DPPM estimate for the simple test.
* ``fullchip`` — transient of the entire stitched converter (every
  comparator, the dual ladder, the CMOS decoder) through the sparse
  linear backend; prints matrix shape, per-phase timings and the
  decoded output code (see ``docs/ENGINE.md``).
* ``diagnose build|query|report|serve`` — fault-dictionary diagnosis
  (see ``docs/DIAGNOSIS.md``).
* ``worker <url>`` — join a distributed campaign as a worker (see
  ``docs/DISTRIBUTED.md``).
* ``optimize run|resume|report`` — evolutionary DfT/test-plan search
  producing Pareto fronts over coverage, test time, DfT area and
  diagnostic resolution (see ``docs/OPTIMIZE.md``).

Budgets default to quick (minutes); ``--full`` uses paper-scale
campaigns.  Execution is managed by the campaign runner: ``--jobs N``
fans fault-class simulations out over worker processes (default: all
cores), ``--cache-dir`` enables the content-addressed results store so
identical re-runs hit cache, and ``--resume`` continues an interrupted
campaign from its journal instead of starting over.  ``campaign
--coordinator`` shards the campaign over HTTP workers instead of a
local pool: ``--workers N`` spawns localhost workers, or point
``python -m repro worker <url>`` processes from other hosts at the
printed URL.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .campaign import (CampaignOptions, CampaignRunner, ConsoleReporter,
                       DEFAULT_CACHE_DIR, EventBus)
from .core import (PathConfig, add_engine_arguments, engine_knobs,
                   quality_report, render_fig3, render_fig4,
                   render_macro_current_detectability, render_table1,
                   render_table2, render_table3, save_path_result)
from .testgen import (FULL_DFT, NO_DFT, defect_oriented_cost,
                      specification_oriented_cost)

_PATH_COMMANDS = ("table1", "table2", "table3", "fig3", "fig4", "fig5",
                  "macros", "quality", "campaign")
_MACRO_LAYOUTS = ("comparator", "ladder", "biasgen", "clockgen")
#: artifacts that only need the comparator macro
_COMPARATOR_ONLY = ("table1", "table2", "table3", "fig3")


def _config(args, dft=NO_DFT) -> PathConfig:
    knobs = engine_knobs(args)
    if args.full:
        return PathConfig(n_defects=25000, magnitude_defects=2_000_000,
                          dft=dft, seed=args.seed, **knobs)
    return PathConfig(n_defects=args.defects, max_classes=args.classes,
                      dft=dft, seed=args.seed, **knobs)


def _options(args, default_cache: Optional[str] = None
             ) -> CampaignOptions:
    cache_dir = args.cache_dir
    if cache_dir is None and default_cache is not None:
        cache_dir = default_cache
    return CampaignOptions(jobs=args.jobs, cache_dir=cache_dir,
                           resume=args.resume)


def _runner(args, dft=NO_DFT,
            default_cache: Optional[str] = None) -> CampaignRunner:
    """Campaign runner with live stderr reporting wired up.

    The runner's metrics collector subscribes first, then the console
    reporter — so every progress line can include up-to-date ETA and
    cache-hit figures.  The reporter writes one whole line per event
    under the bus lock, so interleaved updates from parallel macro
    streams never mangle stderr.
    """
    options = _options(args, default_cache=default_cache)
    bus = EventBus()
    runner = CampaignRunner(_config(args, dft), options, bus=bus)
    bus.subscribe(ConsoleReporter(every=10, collector=runner.collector,
                                  jobs=options.resolved_jobs()))
    return runner


def _run_path(args, dft=NO_DFT):
    macros = list(_MACRO_LAYOUTS) + ["decoder"]
    if args.command in _COMPARATOR_ONLY:
        macros = ["comparator"]
    return _runner(args, dft).run(macros=macros).path_result


def _run_coordinator(args, dft):
    """``campaign --coordinator``: serve shards, merge, assemble.

    With ``--workers N`` a localhost pool of worker processes is
    spawned against the coordinator; with ``--workers 0`` the URL is
    printed and external ``python -m repro worker <url>`` processes
    do the simulating.  Either way the merged result is byte-identical
    to a single-host run of the same config and seed.
    """
    from .campaign.distributed import Coordinator, LocalWorkerPool
    options = _options(args, default_cache=DEFAULT_CACHE_DIR)
    bus = EventBus()
    coordinator = Coordinator(
        _config(args, dft), options, bus=bus,
        shard_size=args.shard_size, lease=args.lease,
        host=args.bind, port=args.port)
    bus.subscribe(ConsoleReporter(every=10,
                                  collector=coordinator.collector,
                                  jobs=max(1, args.workers)))
    url = coordinator.start()
    print(f"coordinator serving at {url} "
          f"(join with: python -m repro worker {url})",
          file=sys.stderr)
    pool = None
    if args.workers > 0:
        pool = LocalWorkerPool(url, args.workers, mode="process",
                               jobs=1,
                               cache_dir=options.resolved_cache_dir())
        pool.start()
    try:
        campaign = coordinator.wait()
    finally:
        if pool is not None:
            pool.join(timeout=10.0)
        coordinator.stop()
    return campaign, coordinator


def _run_campaign(args) -> int:
    """The ``campaign`` command: full managed run + metrics report."""
    dft = FULL_DFT if args.dft else NO_DFT
    coordinator = None
    if args.coordinator:
        campaign, coordinator = _run_coordinator(args, dft)
    else:
        runner = _runner(args, dft, default_cache=DEFAULT_CACHE_DIR)
        campaign = runner.run()
    result, metrics = campaign.path_result, campaign.metrics

    if args.out:
        save_path_result(result, args.out)
        print(f"results saved to {args.out}", file=sys.stderr)
    if args.metrics_out:
        payload = metrics.as_dict()
        if coordinator is not None:
            payload["distributed"] = \
                coordinator.distributed.snapshot().as_dict()
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"metrics saved to {args.metrics_out}", file=sys.stderr)

    cat = result.global_coverage()
    noncat = result.global_coverage(noncat=True)
    lines = [
        f"campaign ({result.config.dft.label}, "
        f"seed {result.config.seed})",
        f"  classes:   {metrics.completed} total, "
        f"{metrics.computed} computed, {metrics.cache_hits} cache "
        f"hits, {metrics.journal_hits} resumed, "
        f"{metrics.degraded} degraded",
        f"  wall time: {metrics.wall_time:.1f}s "
        f"(simulated {metrics.simulated_time:.1f}s, cache-hit rate "
        f"{100 * metrics.cache_hit_rate:.0f}%)",
        f"  coverage:  catastrophic {100 * cat.total:.1f}%  "
        f"non-catastrophic {100 * noncat.total:.1f}%",
    ]
    print("\n".join(lines))
    return 0


def _run_fullchip(args) -> int:
    """The ``fullchip`` command: one start-up transient of the chip.

    The march exercises the sparse backend at full-chip size (or any
    ``--solver`` for crossover comparisons) and reports the matrix
    shape, the per-phase solver timings and the converter's decoded
    output code at the end of the march.
    """
    import time

    from .adc.fullchip import (build_fullchip, decode_at,
                               fullchip_transient)
    from .circuit import backend

    # at chip size "auto" means sparse (the macro engines' dense
    # default is an O(n^3)-per-iterate wall here); an explicit choice
    # is honoured for crossover comparisons
    solver = "sparse" if args.solver == "auto" else args.solver
    chip = build_fullchip(n_bits=args.n_bits, vin=args.vin)
    compiled = chip.circuit.compile()
    print(f"fullchip: {chip.n_taps} comparators, "
          f"{len(chip.circuit.elements)} elements, "
          f"{compiled.size} unknowns", file=sys.stderr)
    backend.reset_timings()
    backend.reset_matrix()
    started = time.perf_counter()
    result = fullchip_transient(chip, tstop=args.tstop, dt=args.step,
                                solver=solver)
    wall = time.perf_counter() - started
    info = backend.snapshot_matrix()
    lines = [
        f"fullchip {args.n_bits}-bit transient "
        f"(vin={args.vin:g} V, tstop={args.tstop:g} s, "
        f"dt={args.step:g} s)",
        f"  backend:  {info.get('backend', solver)} "
        f"n={info.get('n', compiled.size)} "
        f"nnz={info.get('nnz', '?')}",
        f"  wall:     {wall:.2f}s",
    ]
    for phase, seconds in sorted(backend.snapshot_timings().items()):
        lines.append(f"  {phase + ':':<19}{seconds:.2f}s")
    lines.append(f"  code at {result.times[-1]:g}s: "
                 f"{decode_at(chip, result, result.times[-1])}")
    print("\n".join(lines))
    return 0


def _worker_main(argv: list) -> int:
    """The ``worker`` command: join a distributed campaign."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Join a distributed campaign as a worker: "
                    "re-plan from the coordinator's config, lease "
                    "shards, simulate, report.")
    parser.add_argument("url",
                        help="coordinator base URL "
                             "(http://host:port)")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker id (default: "
                             "host-pid-serial)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool width per shard "
                             "(default 1: in-process serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="local results-store root; enables "
                             "worker-side caching and the per-shard "
                             "crash-safety journal")
    args = parser.parse_args(argv)
    from .campaign.distributed import WorkerError, run_worker
    try:
        stats = run_worker(args.url, worker_id=args.worker_id,
                           jobs=args.jobs, cache_dir=args.cache_dir)
    except WorkerError as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(stats, sort_keys=True))
    return 0


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["diagnose"]:
        # the diagnose command owns its own subcommand tree
        from .diagnosis.cli import main as diagnose_main
        return diagnose_main(argv[1:])
    if argv[:1] == ["worker"]:
        # workers parse their own tree (a URL, not a PathConfig — the
        # coordinator ships the campaign's config over the wire)
        return _worker_main(argv[1:])
    if argv[:1] == ["optimize"]:
        # the optimize command owns its own subcommand tree
        from .optimize.cli import main as optimize_main
        return optimize_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command",
                        choices=_PATH_COMMANDS
                        + ("layout", "cost", "fullchip"))
    parser.add_argument("macro", nargs="?", default="comparator",
                        choices=_MACRO_LAYOUTS,
                        help="macro for the 'layout' command")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale Monte Carlo budgets")
    parser.add_argument("--defects", type=int, default=10000,
                        help="quick-mode defect budget")
    parser.add_argument("--classes", type=int, default=30,
                        help="quick-mode class cap per macro")
    parser.add_argument("--seed", type=int, default=1995,
                        help="Monte Carlo seed (campaigns are "
                             "bit-reproducible per seed)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--cache-dir", default=None,
                        help="results-store root; enables caching and "
                             "journaling")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted campaign from "
                             "its journal")
    parser.add_argument("--dft", action="store_true",
                        help="campaign command: apply full DfT")
    parser.add_argument("--coordinator", action="store_true",
                        help="campaign command: shard over HTTP "
                             "workers instead of a local pool")
    parser.add_argument("--bind", default="127.0.0.1",
                        help="coordinator bind address")
    parser.add_argument("--port", type=int, default=0,
                        help="coordinator port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=0,
                        help="coordinator: spawn N localhost worker "
                             "processes (0 = external workers only)")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="coordinator: fault classes per shard")
    parser.add_argument("--lease", type=float, default=30.0,
                        help="coordinator: shard lease seconds")
    parser.add_argument("--out", default=None,
                        help="campaign command: save results JSON here")
    parser.add_argument("--metrics-out", default=None,
                        help="campaign command: save metrics JSON here")
    parser.add_argument("--n-bits", type=int, default=8,
                        help="fullchip command: converter resolution "
                             "(2**n comparators; default %(default)s)")
    parser.add_argument("--vin", type=float, default=2.5,
                        help="fullchip command: input voltage "
                             "(default %(default)g V)")
    parser.add_argument("--tstop", type=float, default=5e-10,
                        help="fullchip command: march length in "
                             "seconds (default %(default)g)")
    parser.add_argument("--step", type=float, default=1e-11,
                        help="fullchip command: timestep in seconds "
                             "(the start-up march wants a finer step "
                             "than the macro engines' --dt; default "
                             "%(default)g)")
    add_engine_arguments(parser)
    args = parser.parse_args(argv)

    if args.command == "cost":
        defect = defect_oriented_cost()
        spec = specification_oriented_cost()
        print(f"defect-oriented test: {1000 * defect.total:.2f} ms")
        print(f"spec-oriented test:   {1000 * spec.total:.2f} ms")
        print(f"speedup: {spec.total / defect.total:.1f}x")
        return 0

    if args.command == "layout":
        from .adc.biasgen import biasgen_layout
        from .adc.clockgen import clockgen_layout
        from .adc.comparator import comparator_layout
        from .adc.ladder import ladder_slice_layout
        from .layout.render import render_cell
        cells = {"comparator": comparator_layout,
                 "ladder": ladder_slice_layout,
                 "biasgen": biasgen_layout,
                 "clockgen": clockgen_layout}
        print(render_cell(cells[args.macro]()))
        return 0

    if args.command == "fullchip":
        return _run_fullchip(args)

    if args.command == "campaign":
        return _run_campaign(args)

    if args.command == "fig5":
        result = _run_path(args, dft=FULL_DFT)
        print(render_fig4(result.global_coverage(),
                          result.global_coverage(noncat=True),
                          title="Fig. 5: global detectability "
                                "(full DfT)"))
        return 0

    result = _run_path(args)
    comparator = result.macros.get("comparator")
    if args.command == "table1":
        print(render_table1(comparator.classes))
    elif args.command == "table2":
        print(render_table2(comparator.result,
                            comparator.noncat_result))
    elif args.command == "table3":
        print(render_table3(comparator.result,
                            comparator.noncat_result))
    elif args.command == "fig3":
        print(render_fig3(comparator.result))
    elif args.command == "fig4":
        print(render_fig4(result.global_coverage(),
                          result.global_coverage(noncat=True)))
    elif args.command == "macros":
        print(render_macro_current_detectability(
            result.macro_results()))
    elif args.command == "quality":
        report = quality_report(result.macro_results())
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
