"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1|table2|table3|fig3|fig4|fig5`` — regenerate a paper artifact.
* ``macros`` — per-macro current detectability table.
* ``layout <macro>`` — ASCII rendering of a macro's layout.
* ``cost`` — defect-oriented vs specification-oriented tester time.
* ``quality`` — shipped-DPPM estimate for the simple test.

Budgets default to quick (minutes); ``--full`` uses paper-scale
campaigns.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from .core import (DefectOrientedTestPath, PathConfig, quality_report,
                   render_fig3, render_fig4,
                   render_macro_current_detectability, render_table1,
                   render_table2, render_table3)
from .testgen import (FULL_DFT, NO_DFT, defect_oriented_cost,
                      specification_oriented_cost)

_PATH_COMMANDS = ("table1", "table2", "table3", "fig3", "fig4", "fig5",
                  "macros", "quality")
_MACRO_LAYOUTS = ("comparator", "ladder", "biasgen", "clockgen")


def _config(args, dft=NO_DFT) -> PathConfig:
    if args.full:
        return PathConfig(n_defects=25000, magnitude_defects=2_000_000,
                          dft=dft)
    return PathConfig(n_defects=args.defects, max_classes=args.classes,
                      dft=dft)


def _run_path(args, dft=NO_DFT):
    path = DefectOrientedTestPath(_config(args, dft))
    started = time.time()

    def progress(macro, done, total):
        if done % 10 == 0 or done == total:
            print(f"  {macro}: {done}/{total} classes "
                  f"({time.time() - started:.0f}s)", file=sys.stderr,
                  flush=True)

    macros = None
    if args.command in ("table1", "table2", "table3", "fig3"):
        macros = ["comparator"]
    return path.run(macros=macros, progress=progress)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command",
                        choices=_PATH_COMMANDS + ("layout", "cost"))
    parser.add_argument("macro", nargs="?", default="comparator",
                        choices=_MACRO_LAYOUTS,
                        help="macro for the 'layout' command")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale Monte Carlo budgets")
    parser.add_argument("--defects", type=int, default=10000,
                        help="quick-mode defect budget")
    parser.add_argument("--classes", type=int, default=30,
                        help="quick-mode class cap per macro")
    args = parser.parse_args(argv)

    if args.command == "cost":
        defect = defect_oriented_cost()
        spec = specification_oriented_cost()
        print(f"defect-oriented test: {1000 * defect.total:.2f} ms")
        print(f"spec-oriented test:   {1000 * spec.total:.2f} ms")
        print(f"speedup: {spec.total / defect.total:.1f}x")
        return 0

    if args.command == "layout":
        from .adc.biasgen import biasgen_layout
        from .adc.clockgen import clockgen_layout
        from .adc.comparator import comparator_layout
        from .adc.ladder import ladder_slice_layout
        from .layout.render import render_cell
        cells = {"comparator": comparator_layout,
                 "ladder": ladder_slice_layout,
                 "biasgen": biasgen_layout,
                 "clockgen": clockgen_layout}
        print(render_cell(cells[args.macro]()))
        return 0

    if args.command == "fig5":
        result = _run_path(args, dft=FULL_DFT)
        print(render_fig4(result.global_coverage(),
                          result.global_coverage(noncat=True),
                          title="Fig. 5: global detectability "
                                "(full DfT)"))
        return 0

    result = _run_path(args)
    comparator = result.macros.get("comparator")
    if args.command == "table1":
        print(render_table1(comparator.classes))
    elif args.command == "table2":
        print(render_table2(comparator.result,
                            comparator.noncat_result))
    elif args.command == "table3":
        print(render_table3(comparator.result,
                            comparator.noncat_result))
    elif args.command == "fig3":
        print(render_fig3(comparator.result))
    elif args.command == "fig4":
        print(render_fig4(result.global_coverage(),
                          result.global_coverage(noncat=True)))
    elif args.command == "macros":
        print(render_macro_current_detectability(
            result.macro_results()))
    elif args.command == "quality":
        report = quality_report(result.macro_results())
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
