"""Benchmarks for the repository's extensions beyond the paper.

1. **At-speed missing-code test** — the paper points out that 'clock
   value' faults escape the static voltage test; the dynamic variant
   catches them.  Quantifies the coverage it adds.
2. **Outgoing quality** — what the coverage numbers mean in shipped
   DPPM (Williams-Brown on a Poisson yield from the measured fault
   statistics).
"""

from conftest import emit

from repro.core.quality import dppm, quality_report
from repro.faultsim import VoltageSignature
from repro.macrotest import macro_breakdown


def test_dynamic_test_gain(benchmark, std_path_result):
    """Coverage the at-speed test adds: exactly the clock-value classes
    that nothing else catches."""
    comparator = std_path_result.macros["comparator"].result

    def clock_value_escapes():
        total = comparator.total_faults
        return sum(r.count for r in comparator.records
                   if r.voltage_signature == VoltageSignature.CLOCK_VALUE
                   and not r.detected) / total

    gain = benchmark.pedantic(clock_value_escapes, rounds=1,
                              iterations=1)
    base = macro_breakdown(comparator)
    emit("extension_dynamic_test", "\n".join([
        f"comparator coverage, static tests only: "
        f"{100 * base.total:.1f}%",
        f"clock-value escapes recoverable at speed: "
        f"{100 * gain:.1f}% of faults",
        f"comparator coverage with the at-speed test: "
        f"{100 * (base.total + gain):.1f}%",
    ]))
    assert 0.0 <= gain <= base.undetected + 1e-9
    assert base.total + gain <= 1.0 + 1e-9


def test_quality_model(benchmark, std_path_result, dft_path_result):
    macros_std = std_path_result.macro_results()
    report_std = benchmark.pedantic(quality_report, (macros_std,),
                                    rounds=1, iterations=1)
    report_dft = quality_report(dft_path_result.macro_results())
    emit("extension_quality", "\n".join([
        f"standard design: {report_std}",
        f"full DfT:        {report_dft}",
        f"DPPM at the paper's coverages (same yield): "
        f"{dppm(report_std.process_yield, 0.933):.0f} -> "
        f"{dppm(report_std.process_yield, 0.991):.0f}",
    ]))
    # DfT coverage is at least as good, so shipped quality is at least
    # as good (same fault-rate model)
    assert report_dft.coverage >= report_std.coverage - 0.02
    assert report_std.shipped_dppm >= 0.0
