"""Paper Fig. 3: detectability overlap for comparator catastrophic
faults.

The four detection mechanisms — missing codes, IVdd, IDDQ, Iinput — are
combined into the overlap partition.  Shape checks against the paper:
the missing-code test alone detects a majority of the faults (66.2 %),
current measurements are indispensable (a substantial current-only
slice; 26.6 % in the paper), and some faults are detectable *only* by
the clock generator's IDDQ (10.0 %).
"""

from conftest import emit

from repro.core.report import render_fig3
from repro.macrotest import macro_breakdown, mechanism_overlap


def test_fig3(benchmark, comparator_analysis):
    result = comparator_analysis.result
    overlap = benchmark.pedantic(mechanism_overlap, (result,), rounds=1,
                                 iterations=1)
    breakdown = macro_breakdown(result)
    emit("fig3_comparator_detectability", render_fig3(result))

    missing_code_total = sum(frac for key, frac in overlap.items()
                             if not key.startswith("only:") and
                             "missing_codes" in key)
    # missing codes catch a majority of comparator faults (paper 66.2 %)
    assert missing_code_total > 0.4
    # current-only slice exists (paper 26.6 %)
    current_only = breakdown.current_only
    assert current_only > 0.02
    # the partition is consistent
    partition_sum = sum(frac for key, frac in overlap.items()
                        if not key.startswith("only:"))
    assert abs(partition_sum - 1.0) < 1e-9
    # IDDQ-only faults exist (paper 10.0 %): hard for voltage tests
    assert overlap.get("only:iddq", 0.0) > 0.0
