"""Distributed-fabric benchmark: 3-worker campaign vs single host.

The distributed campaign fabric promises two things: a merged result
byte-identical to a single-host run with the same config and seed
(records are pure functions of (fault class, engine spec); the
coordinator assembles them in plan order), and a wall-clock win from
fanning the shard queue out to worker processes.  This benchmark
measures both on the full-path fault campaign (every macro, the
comparator classes dominating the wall) by running the identical
workload twice: once through a plain ``jobs=1``
:class:`CampaignRunner`, once
through a localhost :class:`Coordinator` with three spawned worker
processes (``LocalWorkerPool`` in process mode — the same machinery
``python -m repro campaign --coordinator --workers 3`` uses).

Identity is checked on the serialised detection records (byte
equality of the canonical JSON) and on the diagnosis dictionary
compiled from each result (same fingerprint, same entries) — always,
on any machine.  The :data:`MIN_SPEEDUP` floor is only enforced where
it can physically hold: three workers need at least three cores, so
on smaller hosts the payload carries ``floor_enforced: false`` and
the speedup is informational.  Both stores are pre-seeded with every
macro's good-circuit baseline (what any repeat campaign over the same
cache dir gets for free) so neither side pays the good-space sweeps
and the comparison isolates class-simulation fan-out.

Numbers persist machine-readable to
``benchmarks/output/BENCH_distributed.json`` so the performance
trajectory is tracked across PRs (``scripts/bench_compare.py`` diffs
two such files).

Runs standalone (``python benchmarks/bench_distributed.py``) or under
pytest with the other benchmarks.
"""

import argparse
import json
import os
import pathlib
import sys
import time

from repro.campaign import (CampaignOptions, CampaignRunner,
                            clear_engine_cache)
from repro.campaign.distributed import Coordinator
from repro.circuit.batch import clear_kernel_cache
from repro.core import PathConfig
from repro.core.serialize import record_to_dict
from repro.diagnosis import dictionary_for_campaign

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: the acceptance floor: three workers must at least halve the
#: single-host wall time (enforced only where >= WORKERS cores exist)
MIN_SPEEDUP = 2.0

#: worker processes in the distributed run
WORKERS = 3

#: class-discovery budget of the benchmark campaign — sized so the
#: single-host reference takes CI-minutes-scale wall time and worker
#: start-up (interpreter + re-planning) stays small against it
N_DEFECTS = 2500
MAX_CLASSES = 32

#: small shards so the lease queue load-balances dynamically across
#: unequal class costs
SHARD_SIZE = 2


def bench_config(n_defects=N_DEFECTS,
                 max_classes=MAX_CLASSES) -> PathConfig:
    """The benchmark workload: the full-path fault campaign."""
    return PathConfig(n_defects=n_defects, max_classes=max_classes,
                      include_noncat=True)


def _seed_baselines(config: PathConfig, *dirs) -> None:
    """Publish every macro's good-circuit baseline to every store.

    ``prepare()`` resolves (and persists) the baselines without
    simulating a single fault class; the engine cache makes the
    second store's pass nearly free.  Seeding both sides keeps the
    good-space sweeps out of the measured walls.
    """
    for cache_dir in dirs:
        CampaignRunner(
            config,
            CampaignOptions(jobs=1, cache_dir=cache_dir)) \
            .prepare(None, jobs=1)


def _canonical_records(campaign) -> bytes:
    """Serialise every detection record of a campaign, plan order."""
    macros = {}
    for name, analysis in sorted(campaign.path_result.macros.items()):
        out = {"records": [record_to_dict(r)
                           for r in analysis.result.records]}
        if analysis.noncat_result is not None:
            out["noncat"] = [record_to_dict(r)
                             for r in analysis.noncat_result.records]
        macros[name] = out
    return json.dumps(macros, sort_keys=True).encode("utf-8")


def run_bench(n_defects=N_DEFECTS, max_classes=MAX_CLASSES,
              workers=WORKERS, work_dir=None) -> dict:
    """Time single host vs coordinator + workers, verify identity."""
    import tempfile
    config = bench_config(n_defects, max_classes)
    with tempfile.TemporaryDirectory(dir=work_dir) as tmp:
        root = pathlib.Path(tmp)
        _seed_baselines(config, root / "single", root / "dist")

        clear_engine_cache()
        clear_kernel_cache()
        started = time.perf_counter()
        single = CampaignRunner(
            config,
            CampaignOptions(jobs=1, cache_dir=root / "single")) \
            .run(None)
        single_wall = time.perf_counter() - started

        clear_engine_cache()
        clear_kernel_cache()
        coordinator = Coordinator(
            config, CampaignOptions(jobs=1, cache_dir=root / "dist"),
            shard_size=SHARD_SIZE, lease=60.0)
        started = time.perf_counter()
        distributed = coordinator.run(workers=workers,
                                      worker_mode="process",
                                      timeout=1800)
        distributed_wall = time.perf_counter() - started

        records_identical = (
            distributed.fingerprint == single.fingerprint and
            _canonical_records(distributed) ==
            _canonical_records(single))
        single_dict = dictionary_for_campaign(single)
        dist_dict = dictionary_for_campaign(distributed)
        dictionary_identical = (
            dist_dict.meta["fingerprint"] ==
            single_dict.meta["fingerprint"] and
            dist_dict.entries == single_dict.entries)
        dashboard = coordinator.distributed.snapshot()

    speedup = single_wall / distributed_wall
    cpus = os.cpu_count() or 1
    return {
        "workload": f"full-path campaign "
                    f"({dashboard.shards_total} shards, "
                    f"{n_defects} defects)",
        "single_wall": single_wall,
        "distributed_wall": distributed_wall,
        "speedup": speedup,
        "scaling_efficiency": speedup / workers,
        "workers": workers,
        "min_speedup": MIN_SPEEDUP,
        "floor_enforced": cpus >= workers,
        "cpu_count": cpus,
        "records_identical": records_identical,
        "dictionary_identical": dictionary_identical,
        "shards": dashboard.shards_total,
        "reclaims": dashboard.reclaims,
        "duplicate_reports": dashboard.duplicate_reports,
    }


def emit_distributed_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_distributed.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def test_distributed_speedup():
    """Distributed fabric: byte-identical merge, and >= MIN_SPEEDUP
    with three workers wherever three cores exist."""
    payload = run_bench()
    emit_distributed_json(payload)
    assert payload["records_identical"], \
        "distributed merge diverges from the single-host reference"
    assert payload["dictionary_identical"], \
        "diagnosis dictionary diverges from the single-host reference"
    assert payload["reclaims"] == 0, \
        "healthy localhost workers lost a lease"
    if payload["floor_enforced"]:
        assert payload["speedup"] >= MIN_SPEEDUP, (
            f"distributed speedup {payload['speedup']:.2f}x below "
            f"the {MIN_SPEEDUP:.1f}x floor at "
            f"{payload['workers']} workers")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--defects", type=int, default=N_DEFECTS,
                        help="class-discovery defect budget "
                             "(default: %(default)d)")
    parser.add_argument("--max-classes", type=int, default=MAX_CLASSES,
                        help="class cap (default: %(default)d)")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help="worker processes (default: %(default)d)")
    args = parser.parse_args()
    payload = run_bench(n_defects=args.defects,
                        max_classes=args.max_classes,
                        workers=args.workers)
    emit_distributed_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    if not payload["records_identical"]:
        print("FAIL: distributed records diverge from single host",
              file=sys.stderr)
        return 1
    if not payload["dictionary_identical"]:
        print("FAIL: diagnosis dictionary diverges from single host",
              file=sys.stderr)
        return 1
    if payload["floor_enforced"] and \
            payload["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {payload['speedup']:.2f}x < "
              f"{MIN_SPEEDUP:.1f}x at {payload['workers']} workers",
              file=sys.stderr)
        return 1
    if not payload["floor_enforced"]:
        print(f"note: {payload['cpu_count']} cores < "
              f"{payload['workers']} workers; speedup floor not "
              f"enforced on this host", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
