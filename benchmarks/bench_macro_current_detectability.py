"""Paper section 3.3 text: per-macro current detectability.

"The high current detectability of faults in some of these cells was
striking: in the clock generator 93.8% and in the reference ladder even
99.8% of the faults were current detectable."

Our synthesised ladder layout has more tap-to-tap adjacency than the
production Philips ladder, so its current figure lands below the paper's
(documented in EXPERIMENTS.md); the clock generator matches closely.
"""

from conftest import emit

from repro.core.report import render_macro_current_detectability
from repro.macrotest import macro_breakdown


def test_macro_current_detectability(benchmark, std_path_result):
    results = benchmark.pedantic(std_path_result.macro_results,
                                 rounds=1, iterations=1)
    emit("macro_current_detectability",
         render_macro_current_detectability(results))

    by_name = {m.name: macro_breakdown(m) for m in results}
    # clock generator: overwhelmingly current (IDDQ) detectable
    assert by_name["clockgen"].current > 0.85        # paper: 93.8 %
    # ladder: high combined coverage; current detectability substantial
    assert by_name["ladder"].current > 0.35          # paper: 99.8 %
    assert by_name["ladder"].total > 0.85
    # decoder bridges: essentially fully IDDQ-detectable
    assert by_name["decoder"].current > 0.85
