"""Paper sections 3.2 / 4: test time and the comparison against
specification-oriented testing.

Anchors: the missing-code test samples 1000 points at full speed; the
current test is six quiescent measurements at ~100 us each; the total
simple-test time "compares favourably with specification-oriented
tests".  We also run both tests against a shared faulty-device
population to quantify the coverage side of the trade.
"""

from conftest import emit

from repro.adc.behavioral import ComparatorBehavior
from repro.adc.flash import nominal_adc
from repro.testgen import (defect_oriented_cost, missing_code_test,
                           spec_test_detects,
                           specification_oriented_cost)


def build_population():
    """A population of subtle-to-gross faulty devices."""
    population = []
    for k, offset in ((10, 0.003), (40, 0.012), (90, 0.030)):
        population.append((f"offset {1000 * offset:.0f}mV @ {k}",
                           nominal_adc().with_comparator(
                               k, ComparatorBehavior(offset=offset))))
    for k in (5, 120, 250):
        population.append((f"stuck @ {k}", nominal_adc().with_comparator(
            k, ComparatorBehavior(stuck=k % 2 == 0))))
    population.append(("mixed @ 128", nominal_adc().with_comparator(
        128, ComparatorBehavior(mixed_band=0.02))))
    return population


def evaluate():
    rows = []
    for label, adc in build_population():
        rows.append((label, missing_code_test(adc).detected,
                     spec_test_detects(adc)))
    return rows


def test_cost_and_coverage(benchmark):
    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    defect = defect_oriented_cost()
    spec = specification_oriented_cost()

    lines = [f"{'device':28s} {'missing-code':>12s} {'spec':>6s}"]
    for label, mc, sp in rows:
        lines.append(f"{label:28s} {'DETECT' if mc else 'pass':>12s} "
                     f"{'DETECT' if sp else 'pass':>6s}")
    lines.append("")
    lines.append(f"defect-oriented test time: {1000 * defect.total:.2f} ms"
                 f" (active {1000 * (defect.total - 5e-3):.3f} ms)")
    lines.append(f"spec-oriented test time:   {1000 * spec.total:.2f} ms")
    lines.append(f"speedup: {spec.total / defect.total:.1f}x")
    emit("test_cost_vs_spec", "\n".join(lines))

    # the simple test is several times cheaper (paper: "compares
    # favourably")
    assert spec.total > 3 * defect.total
    # and no device the spec test catches escapes the missing-code test
    # in this static population
    for _, mc, sp in rows:
        if sp:
            assert mc
