"""Paper Table 3: current fault signatures of the comparator.

Categories IVdd / IDDQ / Iinput / No deviations; a fault can carry
several signatures, so the percentages overlap (sum > 100 % in the
paper).  Shape checks: a striking share of faults is visible as
quiescent current of the *clock generator* (paper: 24-26 % IDDQ), and a
substantial share carries no current signature at all.
"""

from conftest import emit

from repro.core.report import (current_signature_distribution,
                               render_table3)


def test_table3(benchmark, comparator_analysis):
    cat = comparator_analysis.result
    noncat = comparator_analysis.noncat_result
    dist_cat = benchmark.pedantic(current_signature_distribution, (cat,),
                                  rounds=1, iterations=1)
    dist_noncat = current_signature_distribution(noncat)
    emit("table3_current_signatures", render_table3(cat, noncat))

    # the IDDQ-of-the-clock-generator mechanism is a major contributor
    assert dist_cat["iddq"] > 0.10
    # every category is a fraction
    for dist in (dist_cat, dist_noncat):
        for value in dist.values():
            assert 0.0 <= value <= 1.0
    # detected + undetected partitions: 'none' complements the union,
    # so none + (any current) == 1 is NOT required, but none must equal
    # 1 - current-detected fraction
    covered_cat = 1.0 - dist_cat["none"]
    assert covered_cat > 0.3
