"""Paper Fig. 5: global detectability after the DfT measures.

Both measures applied: the flipflop leakage path removed (tightening the
chip-level sampling-phase IVdd window from tens of mA to a few mA) and
the twin bias lines separated in layout (the near-undetectable
vbn1-vbn2 bridges stop occurring).  Paper anchors: coverage rises from
93.3 % to 99.1 %, and the voltage-only share drops to ~5.8 %, making a
current-only wafer-sort test feasible.
"""

from conftest import emit

from repro.core.report import render_fig4


def test_fig5(benchmark, std_path_result, dft_path_result):
    cat_dft = benchmark.pedantic(dft_path_result.global_coverage,
                                 rounds=1, iterations=1)
    noncat_dft = dft_path_result.global_coverage(noncat=True)
    cat_std = std_path_result.global_coverage()
    emit("fig5_dft_detectability",
         render_fig4(cat_dft, noncat_dft,
                     title="Fig. 5: global detectability (full DfT)") +
         f"\n\nwithout DfT the catastrophic coverage was "
         f"{100 * cat_std.total:.1f}%")

    # DfT improves coverage (paper: 93.3 % -> 99.1 %)
    assert cat_dft.total > cat_std.total
    assert cat_dft.total > 0.90
    # current tests carry more of the load after DfT
    assert cat_dft.current >= cat_std.current - 1e-9
