"""Incremental-engine benchmark: exhaustive vs incremental campaign.

The incremental campaign engine promises two things: per-class
detection verdicts identical to the exhaustive reference, and a
wall-clock win from (1) reusing the good-circuit baseline instead of
re-simulating it, (2) warm-starting every faulty Newton solve from the
cached good trajectories and (3) dropping the remaining stimulus
schedule once a class's signature has left the good space.  This
benchmark measures both on the comparator fault-class campaign — the
macro that dominates full-campaign wall time — and persists the
numbers machine-readable to
``benchmarks/output/BENCH_incremental.json`` so the performance
trajectory is tracked across PRs (``scripts/bench_compare.py`` diffs
two such files).  A speedup below :data:`MIN_SPEEDUP` or any verdict
divergence fails the run.

The exhaustive reference runs ``--cold-start --no-drop`` semantics on
a fresh engine; the incremental run adopts a pre-exported baseline
(what the campaign runner's baseline cache provides on every run after
the first) with warm start and dropping enabled.

Runs standalone (``python benchmarks/bench_incremental.py``, engine
knobs on the command line) or under pytest with the other benchmarks.
"""

import argparse
import json
import pathlib
import sys
import time

from repro.campaign import EngineSpec, build_engine, clear_engine_cache
from repro.campaign.plan import discover_classes
from repro.circuit.batch import clear_kernel_cache
from repro.core import PathConfig, add_engine_arguments, engine_knobs
from repro.testgen import NO_DFT, comparator_layout_for

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: the acceptance floor: the incremental engine must at least halve
#: the wall time of the exhaustive reference on the comparator campaign
MIN_SPEEDUP = 2.0

#: class-discovery budget of the benchmark campaign (kept moderate so
#: the benchmark finishes in CI minutes; REPRO_FULL-scale numbers come
#: from the campaign benchmarks)
N_DEFECTS = 4000
MAX_CLASSES = 8


def comparator_classes(n_defects=N_DEFECTS, max_classes=MAX_CLASSES):
    """The benchmark workload: collapsed comparator fault classes."""
    config = PathConfig(n_defects=n_defects, max_classes=max_classes,
                        include_noncat=False)
    return discover_classes(comparator_layout_for(NO_DFT), config)


def _spec(knobs, warm_start, drop) -> EngineSpec:
    return EngineSpec(macro="comparator", dt=knobs["dt"],
                      big_probe=knobs["big_probe"],
                      small_probe=knobs["small_probe"],
                      corners=knobs["corners"],
                      warm_start=warm_start, drop=drop)


def run_bench(knobs=None, n_defects=N_DEFECTS,
              max_classes=MAX_CLASSES) -> dict:
    """Time exhaustive vs incremental and verify verdict identity."""
    knobs = knobs or engine_knobs(argparse.Namespace())
    classes = comparator_classes(n_defects, max_classes)

    # the baseline the incremental run adopts — computed once, exactly
    # as the campaign runner computes (or loads) it before dispatching
    baseline = build_engine(
        _spec(knobs, warm_start=True, drop=True)).export_baseline() \
        .to_dict()

    def campaign(spec, adopt):
        clear_engine_cache()
        clear_kernel_cache()
        engine = build_engine(spec)
        if adopt:
            assert engine.adopt_baseline(baseline), \
                "exported baseline rejected by a fresh engine"
        started = time.perf_counter()
        records = [engine.simulate_class(fc) for fc in classes]
        return time.perf_counter() - started, records, engine

    exhaustive_wall, exhaustive, ex_engine = campaign(
        _spec(knobs, warm_start=False, drop=False), adopt=False)
    incremental_wall, incremental, inc_engine = campaign(
        _spec(knobs, warm_start=True, drop=True), adopt=True)

    identical = [a.to_dict() for a in exhaustive] == \
        [b.to_dict() for b in incremental]
    return {
        "workload": f"comparator campaign ({len(classes)} classes, "
                    f"{n_defects} defects)",
        "classes": len(classes),
        "exhaustive_wall": exhaustive_wall,
        "incremental_wall": incremental_wall,
        "speedup": exhaustive_wall / incremental_wall,
        "min_speedup": MIN_SPEEDUP,
        "records_identical": identical,
        "runs_exhaustive": ex_engine.runs_simulated,
        "runs_incremental": inc_engine.runs_simulated,
        "probes_dropped": inc_engine.probes_dropped,
        "baseline_source": inc_engine.baseline_source,
    }


def emit_incremental_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def test_incremental_speedup():
    """Incremental engine: verdict-identical and >= MIN_SPEEDUP on the
    comparator campaign."""
    payload = run_bench()
    emit_incremental_json(payload)
    assert payload["records_identical"], \
        "incremental campaign diverges from the exhaustive reference"
    assert payload["baseline_source"] == "adopted"
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"incremental speedup {payload['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_engine_arguments(parser)
    parser.add_argument("--defects", type=int, default=N_DEFECTS,
                        help="class-discovery defect budget "
                             "(default: %(default)d)")
    parser.add_argument("--max-classes", type=int, default=MAX_CLASSES,
                        help="class cap (default: %(default)d)")
    args = parser.parse_args()
    payload = run_bench(knobs=engine_knobs(args),
                        n_defects=args.defects,
                        max_classes=args.max_classes)
    emit_incremental_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    if not payload["records_identical"]:
        print("FAIL: incremental records diverge from exhaustive",
              file=sys.stderr)
        return 1
    if payload["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {payload['speedup']:.2f}x < "
              f"{MIN_SPEEDUP:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
