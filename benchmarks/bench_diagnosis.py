"""Diagnosis benchmark: dictionary build caching + batch query rate.

Two promises are measured on the fast-config comparator campaign (the
``bench_incremental`` budget):

1. **Build reuse** — the first ``build_dictionary`` against a fresh
   store computes everything; the second is all cache hits (class
   records *and* the compiled dictionary blob) and returns the
   byte-identical dictionary.  The closed loop must hold: every
   class's own signature ranks that class or its ambiguity group
   top-1.
2. **Query throughput** — one vectorized ``diagnose_batch`` over
   >= 10k signatures must sustain at least :data:`MIN_QPS`
   queries/second (the matcher is one NumPy distance expression, so
   this floor is conservative by orders of magnitude).

Numbers land machine-readable in
``benchmarks/output/BENCH_diagnosis.json`` (``*_wall`` keys are
tracked by ``scripts/bench_compare.py``).  Runs standalone
(``python benchmarks/bench_diagnosis.py``) or under pytest with the
other benchmarks.
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

from repro.campaign import CampaignOptions, EventBus, MetricsCollector
from repro.campaign.events import DictionaryBuilt
from repro.core import PathConfig
from repro.diagnosis import DictionaryMatcher, build_dictionary

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: batch-query throughput floor (queries/second)
MIN_QPS = 10_000

#: minimum batch size the throughput is measured over
MIN_BATCH = 10_000

#: the fast-config comparator campaign (the bench_incremental budget)
N_DEFECTS = 4000
MAX_CLASSES = 8


def _config(n_defects=N_DEFECTS, max_classes=MAX_CLASSES) -> PathConfig:
    return PathConfig(n_defects=n_defects, max_classes=max_classes,
                      include_noncat=False, seed=1995)


def _build(config, cache_dir):
    bus = EventBus()
    collector = MetricsCollector()
    bus.subscribe(collector)
    built = []
    bus.subscribe(lambda e: built.append(e)
                  if isinstance(e, DictionaryBuilt) else None)
    started = time.perf_counter()
    dictionary = build_dictionary(
        config, CampaignOptions(jobs=1, cache_dir=cache_dir), bus=bus,
        macros=["comparator"])
    wall = time.perf_counter() - started
    return dictionary, wall, collector.snapshot(), built[-1].source


def _closed_loop(dictionary) -> int:
    matcher = DictionaryMatcher(dictionary)
    ok = 0
    for entry, diagnosis in zip(dictionary.entries,
                                matcher.diagnose_batch(
                                    dictionary.matrix())):
        top = diagnosis.top
        if top is not None and (top.label == entry.label or
                                entry.label in
                                diagnosis.ambiguity_group):
            ok += 1
    return ok


def _query_batch(dictionary, n_queries: int) -> np.ndarray:
    """>= n_queries signature vectors cycled from the dictionary's own
    entries plus the all-zero (passing) signature."""
    base = np.vstack([dictionary.matrix(),
                      np.zeros((1, len(dictionary.features)))])
    reps = -(-n_queries // base.shape[0])  # ceil division
    return np.tile(base, (reps, 1))[:n_queries]


def run_bench(n_defects=N_DEFECTS, max_classes=MAX_CLASSES,
              n_queries=MIN_BATCH) -> dict:
    config = _config(n_defects, max_classes)
    with tempfile.TemporaryDirectory() as cache_dir:
        _, cold_wall, cold_metrics, cold_source = _build(config,
                                                         cache_dir)
        dictionary, warm_wall, warm_metrics, warm_source = _build(
            config, cache_dir)

    closed_ok = _closed_loop(dictionary)

    matcher = DictionaryMatcher(dictionary)
    queries = _query_batch(dictionary, n_queries)
    started = time.perf_counter()
    diagnoses = matcher.diagnose_batch(queries)
    query_wall = time.perf_counter() - started

    return {
        "workload": f"comparator dictionary ({len(dictionary)} "
                    f"classes, {n_defects} defects); "
                    f"{len(queries)} queries",
        "classes": len(dictionary),
        "closed_loop_ok": closed_ok,
        "closed_loop_total": len(dictionary),
        "build_cold_wall": cold_wall,
        "build_warm_wall": warm_wall,
        "cold_source": cold_source,
        "warm_source": warm_source,
        "warm_computed": warm_metrics.computed,
        "warm_cache_hits": warm_metrics.cache_hits,
        "cold_computed": cold_metrics.computed,
        "n_queries": len(diagnoses),
        "query_wall": query_wall,
        "queries_per_sec": len(queries) / query_wall,
        "min_queries_per_sec": MIN_QPS,
    }


def emit_diagnosis_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_diagnosis.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def _check(payload: dict) -> list:
    """Acceptance assertions; returns failure messages."""
    failures = []
    if payload["warm_source"] != "cache":
        failures.append("second build was not served from the "
                        "dictionary cache")
    if payload["warm_computed"] != 0:
        failures.append(f"warm build recomputed "
                        f"{payload['warm_computed']} classes")
    if payload["closed_loop_ok"] != payload["closed_loop_total"]:
        failures.append(
            f"closed loop broken: {payload['closed_loop_ok']}/"
            f"{payload['closed_loop_total']} classes self-match")
    if payload["queries_per_sec"] < MIN_QPS:
        failures.append(
            f"batch query rate {payload['queries_per_sec']:.0f}/s "
            f"below the {MIN_QPS}/s floor")
    return failures


def test_diagnosis_bench():
    """Warm build all-cache-hits, closed loop 100%, >= 10k queries/s."""
    payload = run_bench()
    emit_diagnosis_json(payload)
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--defects", type=int, default=N_DEFECTS,
                        help="class-discovery defect budget "
                             "(default: %(default)d)")
    parser.add_argument("--max-classes", type=int, default=MAX_CLASSES,
                        help="class cap (default: %(default)d)")
    parser.add_argument("--queries", type=int, default=MIN_BATCH,
                        help="batch size for the throughput "
                             "measurement (default: %(default)d)")
    args = parser.parse_args()
    payload = run_bench(n_defects=args.defects,
                        max_classes=args.max_classes,
                        n_queries=args.queries)
    emit_diagnosis_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
