"""Test-plan optimization (paper §3.2: "The overlap between different
detection mechanisms gives room for the optimization of the test
method").

Greedy minimum-cost selection over 25 candidate measurements (the
missing-code test plus 24 individual current measurements).  Shape
checks: the optimized plan preserves the macro's achievable coverage at
a fraction of the naive all-measurements cost.
"""

from conftest import emit

from repro.macrotest import macro_breakdown
from repro.testgen import full_plan_cost, optimize_test_plan


def test_plan_optimization(benchmark, std_path_result):
    comparator = std_path_result.macros["comparator"].result
    plan = benchmark.pedantic(optimize_test_plan, (comparator,),
                              rounds=1, iterations=1)
    breakdown = macro_breakdown(comparator)

    emit("test_plan_optimization", plan.describe() + "\n\n" + "\n".join([
        f"naive plan (all 25 measurements): "
        f"{1000 * full_plan_cost():.3f} ms",
        f"optimized plan: {1000 * plan.cost:.3f} ms "
        f"({len(plan.measurements)} measurements)",
        f"cost reduction: {full_plan_cost() / plan.cost:.1f}x",
    ]))

    # the optimizer must not lose any achievable coverage
    assert plan.coverage >= breakdown.total - 1e-9
    # and must beat the naive plan's cost
    assert plan.cost < full_plan_cost()
    assert len(plan.measurements) < 25
