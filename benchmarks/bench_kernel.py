"""Batched-kernel benchmark: batched vs scalar transient wall time.

The batched MNA kernel (:mod:`repro.circuit.batch`) promises two
things: bit-identical results to the scalar solver and a wall-time win
on real fault-simulation workloads.  This benchmark measures both on
the workload the comparator engine actually runs — the fault-free
testbench over the reduced corner set with the above/below input
probes — and persists the numbers machine-readable to
``benchmarks/output/BENCH_kernel.json`` so the performance trajectory
is tracked across PRs.  A speedup below :data:`MIN_SPEEDUP` fails the
run.

Runs standalone (``python benchmarks/bench_kernel.py``, engine knobs
on the command line) or under pytest with the other benchmarks.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.adc.comparator import (CLOCK_PERIOD, build_testbench,
                                  regeneration_windows)
from repro.adc.process import reduced_corners
from repro.circuit.batch import clear_kernel_cache, transient_lanes
from repro.circuit.transient import TransientResult
from repro.core import add_engine_arguments, engine_knobs

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: the acceptance floor: the batched kernel must at least halve the
#: wall time of the scalar path on the comparator workload
MIN_SPEEDUP = 2.0


def comparator_workload(corners=None, big_probe=0.1, vref=2.5):
    """The engine's good-space workload: corners x {above, below}."""
    circuits = []
    for process in corners or reduced_corners():
        for offset in (+big_probe, -big_probe):
            tb = build_testbench(process=process, vin=vref + offset,
                                 vref=vref)
            circuits.append(tb.circuit)
    return circuits


def _lanes_identical(scalar, batched) -> bool:
    if len(scalar) != len(batched):
        return False
    for s, b in zip(scalar, batched):
        if not (isinstance(s, TransientResult)
                and isinstance(b, TransientResult)):
            return type(s) is type(b)
        if not (np.array_equal(s.times, b.times)
                and np.array_equal(s.xs, b.xs)):
            return False
    return True


def run_bench(dt=1e-9, big_probe=0.1, corners=None) -> dict:
    """Time scalar vs batched lanes and verify bit-identity."""
    circuits = comparator_workload(corners=corners,
                                   big_probe=big_probe)
    windows = regeneration_windows(CLOCK_PERIOD, 1)

    def run(batch):
        clear_kernel_cache()
        started = time.perf_counter()
        lanes = transient_lanes(circuits, tstop=CLOCK_PERIOD, dt=dt,
                                fine_windows=windows, batch=batch)
        return time.perf_counter() - started, lanes

    scalar_wall, scalar = run(batch=False)
    batched_wall, batched = run(batch=True)
    return {
        "workload": "comparator good-space "
                    f"({len(circuits)} lanes, dt={dt:g})",
        "lanes": len(circuits),
        "dt": dt,
        "scalar_wall": scalar_wall,
        "batched_wall": batched_wall,
        "speedup": scalar_wall / batched_wall,
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": _lanes_identical(scalar, batched),
    }


def emit_kernel_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def test_kernel_speedup():
    """Batched kernel: bit-identical and >= MIN_SPEEDUP on the
    comparator workload."""
    payload = run_bench()
    emit_kernel_json(payload)
    assert payload["bit_identical"], \
        "batched lanes diverge from the scalar solver"
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"batched kernel speedup {payload['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_engine_arguments(parser)
    args = parser.parse_args()
    knobs = engine_knobs(args)
    payload = run_bench(dt=knobs["dt"], big_probe=knobs["big_probe"],
                        corners=knobs["corners"])
    emit_kernel_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    if not payload["bit_identical"]:
        print("FAIL: batched lanes diverge from scalar",
              file=sys.stderr)
        return 1
    if payload["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {payload['speedup']:.2f}x < "
              f"{MIN_SPEEDUP:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
