"""Full-chip benchmark: sparse vs dense linear backend wall time.

The sparse backend (:mod:`repro.circuit.backend`) exists for one
reason — making a transient of the *entire stitched converter*
(:mod:`repro.adc.fullchip`: every comparator, the dual ladder, the
CMOS decoder) tractable — so this benchmark measures exactly that:

* **Crossover leg** — a short start-up march of the chip at
  :data:`CROSSOVER_BITS` (large enough that the dense ``O(n^3)``
  factorisation dominates, small enough that the dense arm finishes
  in seconds) through both backends.  Sparse must win by at least
  :data:`MIN_SPEEDUP` and the two solution trajectories must agree
  within Newton tolerance.
* **Endurance leg** — the same march at the paper's full 8 bits
  (~8700 MNA unknowns), sparse only; the dense arm would need a
  ~600 MB matrix and minutes per Newton iterate.

Numbers are persisted machine-readable to
``benchmarks/output/BENCH_fullchip.json`` (keys follow the
``*_wall`` / ``*_speedup`` conventions ``scripts/bench_compare.py``
understands) so the performance trajectory is tracked across PRs.

Without scipy the sparse backend degrades to dense and the comparison
is meaningless, so the benchmark skips.  Runs standalone
(``python benchmarks/bench_fullchip.py``) or under pytest with the
other benchmarks.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np
import pytest

from repro.adc.fullchip import build_fullchip, fullchip_transient
from repro.circuit import backend
from repro.circuit.backend import HAVE_SPARSE

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: the acceptance floor at crossover size
MIN_SPEEDUP = 5.0

#: resolution of the dense-vs-sparse comparison leg
CROSSOVER_BITS = 6

#: resolution of the sparse-only endurance leg (the paper's chip)
FULLCHIP_BITS = 8

#: the march: a handful of start-up timepoints, enough Newton solves
#: to amortise per-arm setup, small enough that the dense arm stays
#: in seconds
TSTOP = 5e-11
DT = 1e-11

#: solution agreement: the backends round differently inside the
#: Newton tolerance ball, so trajectories agree to ~NEWTON_VTOL, not
#: bitwise
AGREE_ATOL = 1e-6


def _march(chip, solver: str) -> dict:
    backend.reset_timings()
    backend.reset_matrix()
    started = time.perf_counter()
    result = fullchip_transient(chip, tstop=TSTOP, dt=DT,
                                solver=solver)
    wall = time.perf_counter() - started
    return {
        "wall": wall,
        "phases": backend.snapshot_timings(),
        "matrix": backend.snapshot_matrix(),
        "xs": np.array(result.xs),
    }


def run_bench() -> dict:
    chip = build_fullchip(n_bits=CROSSOVER_BITS)
    sparse = _march(chip, "sparse")
    dense = _march(chip, "dense")
    big = build_fullchip(n_bits=FULLCHIP_BITS)
    endurance = _march(big, "sparse")
    return {
        "workload": f"fullchip start-up march (tstop={TSTOP:g}, "
                    f"dt={DT:g})",
        "crossover_bits": CROSSOVER_BITS,
        "crossover_matrix": sparse["matrix"],
        "crossover_dense_wall": dense["wall"],
        "crossover_sparse_wall": sparse["wall"],
        "crossover_speedup": dense["wall"] / sparse["wall"],
        "crossover_max_divergence": float(
            np.max(np.abs(sparse["xs"] - dense["xs"]))),
        "crossover_phases": {
            "dense": dense["phases"],
            "sparse": sparse["phases"],
        },
        "fullchip_bits": FULLCHIP_BITS,
        "fullchip_matrix": endurance["matrix"],
        "fullchip_sparse_wall": endurance["wall"],
        "fullchip_phases": endurance["phases"],
        "min_speedup": MIN_SPEEDUP,
        "agree_atol": AGREE_ATOL,
    }


def emit_fullchip_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_fullchip.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def _check(payload: dict) -> list:
    failures = []
    if payload["crossover_speedup"] < MIN_SPEEDUP:
        failures.append(
            f"sparse speedup {payload['crossover_speedup']:.2f}x "
            f"below the {MIN_SPEEDUP:.1f}x floor at crossover size")
    if payload["crossover_max_divergence"] > AGREE_ATOL:
        failures.append(
            f"backends diverge by "
            f"{payload['crossover_max_divergence']:.2e} "
            f"(> {AGREE_ATOL:g}) on the crossover march")
    if payload["fullchip_matrix"].get("backend") != "sparse":
        failures.append("endurance leg did not run sparse")
    return failures


@pytest.mark.skipif(not HAVE_SPARSE, reason="scipy not installed")
def test_fullchip_speedup():
    """Sparse backend: >= MIN_SPEEDUP over dense at crossover size,
    Newton-tolerance agreement, and a tractable full 8-bit march."""
    payload = run_bench()
    emit_fullchip_json(payload)
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args()
    if not HAVE_SPARSE:
        print("SKIP: scipy not installed, sparse backend unavailable",
              file=sys.stderr)
        return 0
    payload = run_bench()
    emit_fullchip_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
