"""Evolutionary test-plan optimization benchmark: three gates.

One comparator workload (6000 defects, 12 classes per kind, noncat
classes included so the DfT advisor actually has escapes to diagnose)
drives a small seeded NSGA-II search, and three promises are gated:

1. **Dominance** — the evolved Pareto front dominates the fixed-menu
   advisor plan (recommended DfT genes + greedy schedule) on >= 2 of
   {test time, DfT area, expected resolution} at equal-or-better
   coverage: some front member is at-least-as-good on two of those
   axes and strictly better on at least one, never giving up
   coverage.  (Whether some member weakly dominates the advisor plan
   outright is reported too, but not gated: the 4-objective Pareto
   front routinely outgrows the population, so crowding truncation
   may drop any individual seed point.)
2. **Store economy** — warm generations are scored from the
   content-addressed store and the per-campaign memo:
   ``warm_reuse_speedup`` (generation-0 fresh simulations over the
   warm-generation mean) must be >= :data:`MIN_WARM_REUSE`.
3. **Determinism** — a second run with the same ``--seed`` (fresh
   journal namespace, so nothing is adopted) produces a byte-identical
   canonical front JSON.

Numbers land machine-readable in
``benchmarks/output/BENCH_optimize.json`` (``*_wall`` and
``*_speedup`` keys are tracked by ``scripts/bench_compare.py``).
Runs standalone (``python benchmarks/bench_optimize.py``) or under
pytest with the other benchmarks.
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

from repro.campaign import CampaignOptions, EventBus
from repro.core import PathConfig
from repro.optimize import (EvolutionarySearch, MutationRates,
                            OptimizeMetricsCollector, SearchConfig,
                            fixed_menu_genomes)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: generation-0-to-warm-mean fresh-simulation ratio floor
MIN_WARM_REUSE = 5.0

#: axes beaten (>= as-good with >= 1 strict) floor for the dominance
#: gate
MIN_DOMINATED_AXES = 2

#: the workload: enough defects/classes that the advisor diagnoses
#: real escapes and recommends DfT genes
N_DEFECTS = 6000
MAX_CLASSES = 12

#: search shape: small but multi-generation; campaign-gene mutation
#: is kept low so warm generations stay in the schedule-only regime
#: the store serves for free
POPULATION = 10
GENERATIONS = 4
SEARCH_SEED = 7
CAMPAIGN_MUTATION = 0.03

_EPS = 1e-12


def _config(n_defects=N_DEFECTS, max_classes=MAX_CLASSES) -> PathConfig:
    return PathConfig(n_defects=n_defects, max_classes=max_classes,
                      include_noncat=True, seed=1995)


def _search(config, cache_dir, run_id, seed, population, generations):
    bus = EventBus()
    collector = OptimizeMetricsCollector()
    bus.subscribe(collector)
    search = EvolutionarySearch(
        config,
        SearchConfig(population=population, generations=generations,
                     seed=seed,
                     rates=MutationRates(campaign=CAMPAIGN_MUTATION),
                     run_id=run_id),
        CampaignOptions(jobs=1, cache_dir=cache_dir), bus=bus)
    started = time.perf_counter()
    result = search.run()
    wall = time.perf_counter() - started
    return search, result, collector.snapshot(), wall


def _advisor_plan(search):
    """The fixed-menu advisor plan (recommended DfT genes + greedy
    schedule) scored through the *same* evaluator as the front."""
    menu = fixed_menu_genomes(search.evaluator.base_result(),
                              search.macros)
    with_dft = [g for g in menu
                if g.flipflop_redesign or g.bias_line_reorder or
                g.dynamic_test]
    # the advisor's shippable plan is the greedy-schedule variant;
    # without escapes the menu has no DfT entry and the greedy plan
    # itself is the baseline
    baseline = min(with_dft, key=lambda g: len(g.schedule)) \
        if with_dft else menu[0]
    return search.evaluator.evaluate(baseline)


def _dominance(front, baseline) -> dict:
    """How thoroughly the front beats the baseline plan."""
    b = baseline.objectives
    best_axes, best_strict = 0, 0
    weakly_dominated = False
    for e in front:
        o = e.objectives
        if o.coverage < b.coverage - _EPS:
            continue
        as_good = [o.test_time <= b.test_time + _EPS,
                   o.dft_area <= b.dft_area + _EPS,
                   o.resolution >= b.resolution - _EPS]
        strict = [o.test_time < b.test_time - _EPS,
                  o.dft_area < b.dft_area - _EPS,
                  o.resolution > b.resolution + _EPS]
        # a member counts only when strictly better somewhere; it
        # then "dominates" every axis it is at least as good on
        n_as_good, n_strict = sum(as_good), sum(strict)
        if n_strict > 0 and (n_as_good, n_strict) > \
                (best_axes, best_strict):
            best_axes, best_strict = n_as_good, n_strict
        if all(as_good):
            weakly_dominated = True
    return {"dominated_axes": best_axes,
            "strict_axes": best_strict,
            "weakly_dominated": weakly_dominated}


def run_bench(n_defects=N_DEFECTS, max_classes=MAX_CLASSES,
              population=POPULATION, generations=GENERATIONS,
              seed=SEARCH_SEED) -> dict:
    config = _config(n_defects, max_classes)
    with tempfile.TemporaryDirectory() as cache_dir:
        search, result, metrics, search_wall = _search(
            config, cache_dir, "bench-a", seed, population,
            generations)
        baseline = _advisor_plan(search)
        dominance = _dominance(result.front, baseline)

        # determinism: same seed, fresh journal namespace (nothing
        # adopted), warm store (campaigns all hits)
        started = time.perf_counter()
        _, again, _, _ = _search(config, cache_dir, "bench-b", seed,
                                 population, generations)
        rerun_wall = time.perf_counter() - started

    warm = metrics.generations[1:]
    mean_warm_fresh = sum(g.fresh_simulations for g in warm) / \
        max(1, len(warm))

    return {
        "workload": f"comparator campaign ({n_defects} defects, "
                    f"{max_classes} classes/kind, noncat); population "
                    f"{population}, {generations} generations, "
                    f"seed {seed}",
        "front_size": len(result.front),
        "generations": len(metrics.generations),
        "candidates": metrics.candidates,
        "gen0_fresh_simulations":
            metrics.generations[0].fresh_simulations,
        "mean_warm_fresh_simulations": mean_warm_fresh,
        "warm_reuse_speedup": metrics.warm_reuse_speedup,
        "min_warm_reuse_speedup": MIN_WARM_REUSE,
        "store_hits": metrics.store_hits,
        "hypervolume_trajectory": list(metrics.hypervolume_trajectory),
        "final_hypervolume": metrics.hypervolume_trajectory[-1],
        "baseline_coverage": baseline.objectives.coverage,
        "baseline_test_time": baseline.objectives.test_time,
        "baseline_dft_area": baseline.objectives.dft_area,
        "baseline_resolution": baseline.objectives.resolution,
        "baseline_genome": baseline.genome.describe(),
        "dominated_axes": dominance["dominated_axes"],
        "strict_axes": dominance["strict_axes"],
        "weakly_dominated": dominance["weakly_dominated"],
        "min_dominated_axes": MIN_DOMINATED_AXES,
        "fronts_identical": result.front_json() == again.front_json(),
        "search_wall": search_wall,
        "rerun_wall": rerun_wall,
    }


def emit_optimize_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_optimize.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def _check(payload: dict) -> list:
    """Acceptance assertions; returns failure messages."""
    failures = []
    if payload["dominated_axes"] < MIN_DOMINATED_AXES or \
            payload["strict_axes"] < 1:
        failures.append(
            f"front dominates the advisor plan on only "
            f"{payload['dominated_axes']} axes "
            f"({payload['strict_axes']} strictly) at equal-or-better "
            f"coverage; needs >= {MIN_DOMINATED_AXES} with >= 1 "
            f"strict")
    if payload["warm_reuse_speedup"] < MIN_WARM_REUSE:
        failures.append(
            f"warm-reuse speedup {payload['warm_reuse_speedup']:.2f}x "
            f"below the {MIN_WARM_REUSE}x floor (gen0 "
            f"{payload['gen0_fresh_simulations']} fresh vs "
            f"{payload['mean_warm_fresh_simulations']:.1f} mean warm)")
    if not payload["fronts_identical"]:
        failures.append("two same-seed runs produced different "
                        "fronts")
    return failures


def test_optimize_bench():
    """Front beats the advisor plan, warm generations >= 5x cheaper,
    same-seed fronts byte-identical."""
    payload = run_bench()
    emit_optimize_json(payload)
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--defects", type=int, default=N_DEFECTS,
                        help="defect budget (default: %(default)d)")
    parser.add_argument("--max-classes", type=int,
                        default=MAX_CLASSES,
                        help="class cap per kind "
                             "(default: %(default)d)")
    parser.add_argument("--population", type=int, default=POPULATION,
                        help="population size (default: %(default)d)")
    parser.add_argument("--generations", type=int,
                        default=GENERATIONS,
                        help="breeding generations "
                             "(default: %(default)d)")
    parser.add_argument("--seed", type=int, default=SEARCH_SEED,
                        help="search seed (default: %(default)d)")
    args = parser.parse_args()
    payload = run_bench(n_defects=args.defects,
                        max_classes=args.max_classes,
                        population=args.population,
                        generations=args.generations,
                        seed=args.seed)
    emit_optimize_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
