"""Baseline comparison: high-level fault modeling vs circuit-level.

The paper positions itself against Harvey et al. [7], who used
high-level models to escape IFA's complexity, with the criticism that
"the accuracy of the generated fault models is limited by the
high-level models used."  This benchmark quantifies the criticism on our
own fault population: how often does a careful structural (no
simulation) signature estimate disagree with the transistor-level
engine?
"""

from conftest import emit

from repro.faultsim import VoltageSignature
from repro.faultsim.highlevel import compare_to_circuit_level


def test_highlevel_baseline(benchmark, std_path_result):
    comparator = std_path_result.macros["comparator"]
    # rebuild (fault, truth-signature) pairs from the recorded results;
    # the records store the classified voltage signature and mechanisms
    from repro.faultsim import Measurement, SignatureResult

    def make_pairs():
        pairs = []
        z = (0.0, 0.0, 0.0)
        m = Measurement(decision=True, ivdd=z, iddq=z, iin=z, ivref=z,
                        ibias=z, clock_deviation=0.0)
        for fc, record in zip(comparator.classes,
                              comparator.result.records):
            truth = SignatureResult(
                voltage=record.voltage_signature or
                VoltageSignature.NONE,
                offset_sign=0, mechanisms=record.mechanisms,
                measurements={"above": m, "below": m})
            pairs.append((fc.representative, truth))
        return pairs

    pairs = make_pairs()
    report = benchmark.pedantic(compare_to_circuit_level, (pairs,),
                                rounds=1, iterations=1)

    worst = sorted(report.confusion.items(), key=lambda kv: -kv[1])[:6]
    lines = [
        f"fault classes compared: {report.total}",
        f"voltage-signature agreement: "
        f"{100 * report.voltage_accuracy:.1f}%",
        f"current-mechanism agreement: "
        f"{100 * report.current_accuracy:.1f}%",
        "",
        "most common (estimated -> actual) confusions:",
    ]
    for (est, actual), count in worst:
        if est != actual:
            lines.append(f"  {est:16s} -> {actual:16s} x{count}")
    emit("baseline_highlevel_models", "\n".join(lines))

    # useful but materially inaccurate: the paper's point
    assert report.voltage_accuracy > 0.35
    assert report.voltage_accuracy < 0.95 or \
        report.current_accuracy < 0.95
