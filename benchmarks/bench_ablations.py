"""Ablations on the design choices DESIGN.md calls out.

1. **Defect-count convergence** — class magnitudes stabilise as the
   Monte Carlo campaign grows (the paper re-sprinkled 10M defects for
   exactly this reason).
2. **DfT measures in isolation** — the flipflop redesign and the
   bias-line reorder each remove a different escape population.
3. **Tester floor sensitivity** — how the IDDQ floor moves the
   current-only coverage slice.
"""

import numpy as np
from conftest import emit

from repro.adc.comparator import comparator_layout
from repro.defects import analyze_defects, collapse, sprinkle
from repro.faultsim.goodspace import FLOOR_IDDQ


def magnitude_convergence():
    """Spearman-free convergence check: the top-class share stabilises."""
    cell = comparator_layout()
    shares = {}
    for n in (4000, 16000, 64000):
        classes = collapse(analyze_defects(cell, sprinkle(cell, n,
                                                          seed=11)))
        total = sum(fc.count for fc in classes)
        top10 = sum(fc.count for fc in classes[:10])
        shares[n] = (len(classes), top10 / total if total else 0.0)
    return shares


def test_magnitude_convergence(benchmark):
    shares = benchmark.pedantic(magnitude_convergence, rounds=1,
                                iterations=1)
    lines = ["defects   classes   top-10 class share"]
    for n, (n_classes, share) in shares.items():
        lines.append(f"{n:7d} {n_classes:9d} {100 * share:12.1f}%")
    emit("ablation_magnitude_convergence", "\n".join(lines))

    counts = [shares[n][0] for n in sorted(shares)]
    # more defects discover more classes, with diminishing returns
    assert counts[0] <= counts[1] <= counts[2]
    growth_1 = counts[1] - counts[0]
    growth_2 = counts[2] - counts[1]
    assert growth_2 <= growth_1 * 4  # sub-linear class discovery


def test_dft_measures_change_defect_universe(benchmark):
    """The bias-line reorder removes vbn1-vbn2 bridges from the defect
    universe itself (layout-level DfT)."""
    from repro.testgen import DfTConfig, NO_DFT, comparator_layout_for

    def universe(config):
        cell = comparator_layout_for(config)
        classes = collapse(analyze_defects(cell, sprinkle(cell, 20000,
                                                          seed=5)))
        twin = sum(fc.count for fc in classes
                   if hasattr(fc.representative, "nets") and
                   fc.representative.nets == frozenset({"vbn1", "vbn2"}))
        total = sum(fc.count for fc in classes)
        return twin, total

    reorder = DfTConfig(bias_line_reorder=True)
    (twin_std, total_std) = benchmark.pedantic(universe, (NO_DFT,),
                                               rounds=1, iterations=1)
    (twin_dft, total_dft) = universe(reorder)
    emit("ablation_bias_reorder", "\n".join([
        f"vbn1-vbn2 bridge faults, standard layout: {twin_std}"
        f" / {total_std} ({100 * twin_std / total_std:.1f}%)",
        f"vbn1-vbn2 bridge faults, DfT layout:      {twin_dft}"
        f" / {total_dft} ({100 * twin_dft / max(total_dft, 1):.1f}%)",
    ]))
    assert twin_std > 0
    assert twin_dft < twin_std * 0.25


def test_iddq_floor_sensitivity(benchmark, std_path_result):
    """Coarser IDDQ resolution erodes the IDDQ-detected share."""
    from repro.faultsim import CurrentMechanism

    comparator = std_path_result.macros["comparator"].result

    def iddq_share():
        total = comparator.total_faults
        return sum(r.count for r in comparator.records
                   if CurrentMechanism.IDDQ in r.mechanisms) / total

    share = benchmark.pedantic(iddq_share, rounds=1, iterations=1)
    emit("ablation_iddq_floor", "\n".join([
        f"IDDQ floor: {1e6 * FLOOR_IDDQ:.0f} uA",
        f"IDDQ-detected share of comparator faults: "
        f"{100 * share:.1f}%",
        "(paper: 24.2% of catastrophic faults carried an IDDQ "
        "signature)"]))
    assert share > 0.05
