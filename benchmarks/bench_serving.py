"""Serving benchmark: multi-threaded load against the live v1 API.

Three promises of the production serving layer are measured against a
real :class:`~repro.diagnosis.server.DiagnosisServer` on an ephemeral
port (synthetic comparator-style dictionary, no campaign needed):

1. **Batching pays** — the same query volume pushed through
   ``/v1/diagnose`` in blocks must sustain at least
   :data:`MIN_BATCH_SPEEDUP` x the throughput of the one-query-per-
   request path.  Blocks amortize both the HTTP round-trip and the
   matcher dispatch (one NumPy distance expression per block).
2. **Tail latency is bounded** — the per-request p99, measured under
   :data:`N_CLIENTS` concurrent clients, must stay under
   :data:`MAX_P99_MS` milliseconds.
3. **Hot-reload is invisible** — while clients hammer the service,
   the dictionary behind them is swapped repeatedly through
   ``POST /v1/dictionaries/<name>/reload``; not a single request may
   fail, and traffic must observe more than one dictionary
   generation.
4. **Processes scale past the GIL** — the same batched workload
   against a :class:`~repro.diagnosis.fleet.DiagnosisFleet` of
   :data:`MULTIPROC_PROCS` workers sharing one port must sustain at
   least :data:`MIN_MULTIPROC_SPEEDUP` x the single-process batched
   throughput, and :data:`N_RELOADS` fleet-wide hot-reloads under
   load must fail zero requests and leave every worker at the same
   version.  Like ``bench_distributed.py``, the speedup floor is only
   enforced where it can physically hold (``floor_enforced`` is false
   below 4 cores and the numbers are informational).

Numbers land machine-readable in
``benchmarks/output/BENCH_serving.json`` (``*_qps`` and latency
percentile ``*_ms`` keys are tracked by ``scripts/bench_compare.py``;
percentiles are lower-better).  Runs standalone
(``python benchmarks/bench_serving.py``) or under pytest.
"""

import argparse
import http.client
import json
import os
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

from repro.diagnosis import DictionaryRegistry, compile_dictionary
from repro.diagnosis.fleet import DiagnosisFleet
from repro.diagnosis.server import serve
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: batched queries/sec must beat per-request queries/sec by this factor
MIN_BATCH_SPEEDUP = 2.0

#: per-request p99 latency ceiling (milliseconds) under concurrency
MAX_P99_MS = 250.0

#: concurrent client threads in every phase
N_CLIENTS = 8

#: total queries pushed through each throughput phase
N_QUERIES = 4_000

#: queries per request in the batched phase
BATCH = 100

#: dictionary swaps performed during the hot-reload phase
N_RELOADS = 8

#: worker processes in the multi-process leg
MULTIPROC_PROCS = 4

#: fleet throughput must beat single-process batched by this factor
#: (enforced only when the host has >= MULTIPROC_PROCS cores)
MIN_MULTIPROC_SPEEDUP = 2.0

N_FEATURES = len(signature_feature_names())


def _record(count, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def _dictionary(n_classes=12):
    """A synthetic comparator-style dictionary (no campaign)."""
    mechs = [CurrentMechanism.IVDD, CurrentMechanism.IDDQ,
             CurrentMechanism.IINPUT]
    labeled = [
        (f"comparator:cat:{i}", "comparator", 1.0,
         _record(count=i + 1, voltage=(i % 2 == 0),
                 sig=VoltageSignature.OUTPUT_STUCK_AT
                 if i % 2 == 0 else None,
                 mechs=(mechs[i % 3],)))
        for i in range(n_classes)]
    return compile_dictionary(labeled)


def _query_pool(dictionary, n):
    """n query rows cycling the dictionary's own signatures plus the
    all-zero (passing) vector."""
    base = np.vstack([dictionary.matrix(),
                      np.zeros((1, N_FEATURES))])
    reps = -(-n // base.shape[0])
    return np.tile(base, (reps, 1))[:n]


class _Client:
    """One keep-alive connection; reconnects if the server drops it."""

    def __init__(self, host, port):
        self.host, self.port = host, port
        self.conn = http.client.HTTPConnection(host, port, timeout=30)

    def post(self, path, body):
        for attempt in (0, 1):
            try:
                self.conn.request("POST", path, body=body, headers={
                    "Content-Type": "application/json"})
                response = self.conn.getresponse()
                return response.status, response.read()
            except (http.client.HTTPException, OSError):
                self.conn.close()
                self.conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=30)
                if attempt:
                    raise
        raise RuntimeError("unreachable")

    def close(self):
        self.conn.close()


def _run_clients(host, port, bodies):
    """Split ``bodies`` across N_CLIENTS threads; returns
    (wall, per-request latencies, failures)."""
    shards = [bodies[i::N_CLIENTS] for i in range(N_CLIENTS)]
    latencies = [[] for _ in range(N_CLIENTS)]
    failures = []
    barrier = threading.Barrier(N_CLIENTS + 1)

    def worker(i):
        client = _Client(host, port)
        barrier.wait()
        try:
            for body in shards[i]:
                started = time.perf_counter()
                status, payload = client.post("/v1/diagnose", body)
                latencies[i].append(time.perf_counter() - started)
                if status != 200:
                    failures.append((status, payload[:200]))
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    flat = [x for shard in latencies for x in shard]
    return wall, flat, failures


def _throughput_phase(host, port, queries, batch):
    bodies = [
        json.dumps({"queries": queries[i:i + batch].tolist()}
                   ).encode()
        for i in range(0, len(queries), batch)]
    wall, latencies, failures = _run_clients(host, port, bodies)
    lat_ms = np.asarray(latencies) * 1e3
    return {
        "requests": len(bodies),
        "wall": wall,
        "qps": len(queries) / wall,
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
        "failures": len(failures),
    }


def _reload_phase(host, port, registry, tmp_dir):
    """Swap the dictionary N_RELOADS times through the HTTP route
    while clients hammer /v1/diagnose; returns phase stats."""
    generations = {}
    paths = []
    for k in range(N_RELOADS):
        n_classes = 10 + 1 + (k % 3)  # 11..13 classes, cycling
        path = pathlib.Path(tmp_dir) / f"gen{k}.json"
        _dictionary(n_classes).save(path)
        paths.append(path)
        generations[k + 2] = n_classes  # reload k lands version k+2

    body = json.dumps(
        {"queries": _query_pool(_dictionary(), 4).tolist()}).encode()
    stop = threading.Event()
    failures = []
    versions = set()
    counts = [0] * N_CLIENTS

    def client(i):
        c = _Client(host, port)
        try:
            while not stop.is_set():
                status, raw = c.post("/v1/diagnose", body)
                if status != 200:
                    failures.append((status, raw[:200]))
                    continue
                versions.add(json.loads(raw)["version"])
                counts[i] += 1
        finally:
            c.close()

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    admin = _Client(host, port)
    reload_failures = 0
    try:
        for path in paths:
            # let traffic flow between swaps
            target = sum(counts) + N_CLIENTS
            deadline = time.perf_counter() + 10.0
            while sum(counts) < target and \
                    time.perf_counter() < deadline:
                time.sleep(0.005)
            status, _ = admin.post(
                "/v1/dictionaries/bench/reload",
                json.dumps({"path": str(path)}).encode())
            if status != 200:
                reload_failures += 1
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30)
        admin.close()
    return {
        "reloads": N_RELOADS,
        "reload_failures": reload_failures,
        "requests": sum(counts),
        "failures": len(failures),
        "versions_observed": len(versions),
        "final_version": registry.get("bench").version,
    }


def _fleet_reload_phase(host, port, fleet, tmp_dir):
    """N_RELOADS fleet-wide swaps while clients hammer the shared
    port: zero failed requests, and every worker must settle on the
    same final version."""
    paths = []
    for k in range(N_RELOADS):
        path = pathlib.Path(tmp_dir) / f"fleet-gen{k}.json"
        _dictionary(10 + 1 + (k % 3)).save(path)
        paths.append(path)

    body = json.dumps(
        {"queries": _query_pool(_dictionary(), 4).tolist()}).encode()
    stop = threading.Event()
    failures = []
    versions = set()
    counts = [0] * N_CLIENTS

    def client(i):
        c = _Client(host, port)
        try:
            while not stop.is_set():
                status, raw = c.post("/v1/diagnose", body)
                if status != 200:
                    failures.append((status, raw[:200]))
                    continue
                versions.add(json.loads(raw)["version"])
                counts[i] += 1
        finally:
            c.close()

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    admin = _Client(host, port)
    reload_failures = 0
    try:
        for path in paths:
            target = sum(counts) + N_CLIENTS
            deadline = time.perf_counter() + 10.0
            while sum(counts) < target and \
                    time.perf_counter() < deadline:
                time.sleep(0.005)
            status, _ = admin.post(
                "/v1/dictionaries/bench/reload",
                json.dumps({"path": str(path)}).encode())
            if status != 200:
                reload_failures += 1
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30)
        admin.close()
    worker_versions = fleet.versions("bench")
    return {
        "reloads": N_RELOADS,
        "reload_failures": reload_failures,
        "requests": sum(counts),
        "failures": len(failures),
        "versions_observed": len(versions),
        "worker_versions": worker_versions,
        "final_version": max(worker_versions, default=0),
        "coherent": len(set(worker_versions)) == 1,
    }


def _multiproc_phase(queries, batch, procs, tmp_dir):
    """The batched workload plus the reload hammer against a
    pre-fork fleet of ``procs`` workers on one shared port."""
    path = pathlib.Path(tmp_dir) / "fleet-bench.json"
    _dictionary().save(path)
    fleet = DiagnosisFleet([("bench", str(path))], procs=procs)
    host, port = fleet.start()
    try:
        throughput = _throughput_phase(host, port, queries, batch)
        reload_stats = _fleet_reload_phase(host, port, fleet,
                                           tmp_dir)
    finally:
        fleet.stop(graceful=True)
    throughput["reload"] = reload_stats
    return throughput


def run_bench(n_queries=N_QUERIES, batch=BATCH,
              procs=MULTIPROC_PROCS) -> dict:
    registry = DictionaryRegistry()
    registry.register("bench", dictionary=_dictionary())
    server = serve(registry=registry, port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever,
                              daemon=True)
    thread.start()
    queries = _query_pool(registry.get("bench").dictionary, n_queries)
    try:
        per_request = _throughput_phase(host, port, queries, 1)
        batched = _throughput_phase(host, port, queries, batch)
        with tempfile.TemporaryDirectory() as tmp_dir:
            reload_stats = _reload_phase(host, port, registry,
                                         tmp_dir)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    with tempfile.TemporaryDirectory() as tmp_dir:
        multiproc = _multiproc_phase(queries, batch, procs, tmp_dir)

    cpus = os.cpu_count() or 1
    return {
        "workload": f"{n_queries} queries x {N_CLIENTS} clients; "
                    f"batch={batch}; {N_RELOADS} hot-reloads under "
                    f"load; fleet of {procs} worker processes",
        "n_queries": n_queries,
        "n_clients": N_CLIENTS,
        "batch": batch,
        "per_request_qps": per_request["qps"],
        "per_request_p50_ms": per_request["p50_ms"],
        "per_request_p99_ms": per_request["p99_ms"],
        "per_request_failures": per_request["failures"],
        "batched_qps": batched["qps"],
        "batched_p50_ms": batched["p50_ms"],
        "batched_p99_ms": batched["p99_ms"],
        "batched_failures": batched["failures"],
        "batch_speedup": batched["qps"] / per_request["qps"],
        "reload": reload_stats,
        "multiproc_qps": multiproc["qps"],
        "multiproc_p50_ms": multiproc["p50_ms"],
        "multiproc_p99_ms": multiproc["p99_ms"],
        "multiproc_failures": multiproc["failures"],
        "multiproc_speedup": multiproc["qps"] / batched["qps"],
        "multiproc_reload": multiproc["reload"],
        "procs": procs,
        "cpu_count": cpus,
        "floor_enforced": cpus >= procs,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "min_multiproc_speedup": MIN_MULTIPROC_SPEEDUP,
        "max_p99_ms": MAX_P99_MS,
    }


def emit_serving_json(payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


def _check(payload: dict) -> list:
    """Acceptance assertions; returns failure messages."""
    failures = []
    if payload["per_request_failures"] or payload["batched_failures"]:
        failures.append(
            f"throughput phases saw failed requests "
            f"({payload['per_request_failures']} per-request, "
            f"{payload['batched_failures']} batched)")
    if payload["batch_speedup"] < MIN_BATCH_SPEEDUP:
        failures.append(
            f"batched path only {payload['batch_speedup']:.2f}x the "
            f"per-request path (floor {MIN_BATCH_SPEEDUP}x)")
    if payload["per_request_p99_ms"] > MAX_P99_MS:
        failures.append(
            f"per-request p99 {payload['per_request_p99_ms']:.1f}ms "
            f"above the {MAX_P99_MS:.0f}ms ceiling")
    reload_stats = payload["reload"]
    if reload_stats["failures"] or reload_stats["reload_failures"]:
        failures.append(
            f"hot-reload phase failed requests: "
            f"{reload_stats['failures']} diagnose, "
            f"{reload_stats['reload_failures']} reload")
    if reload_stats["versions_observed"] < 2:
        failures.append("traffic never observed a swapped dictionary "
                        "generation")
    if reload_stats["final_version"] != N_RELOADS + 1:
        failures.append(
            f"expected final version {N_RELOADS + 1}, got "
            f"{reload_stats['final_version']}")
    # multi-process leg: correctness always, speedup where it can hold
    if payload["multiproc_failures"]:
        failures.append(
            f"fleet throughput phase saw "
            f"{payload['multiproc_failures']} failed requests")
    fleet_reload = payload["multiproc_reload"]
    if fleet_reload["failures"] or fleet_reload["reload_failures"]:
        failures.append(
            f"fleet hot-reload phase failed requests: "
            f"{fleet_reload['failures']} diagnose, "
            f"{fleet_reload['reload_failures']} reload")
    if not fleet_reload["coherent"]:
        failures.append(
            f"fleet workers disagree on the final version: "
            f"{fleet_reload['worker_versions']}")
    if fleet_reload["final_version"] != N_RELOADS + 1:
        failures.append(
            f"expected fleet final version {N_RELOADS + 1}, got "
            f"{fleet_reload['final_version']}")
    if payload["floor_enforced"]:
        if payload["multiproc_speedup"] < MIN_MULTIPROC_SPEEDUP:
            failures.append(
                f"fleet of {payload['procs']} only "
                f"{payload['multiproc_speedup']:.2f}x the single-"
                f"process batched path (floor "
                f"{MIN_MULTIPROC_SPEEDUP}x)")
        if payload["multiproc_p99_ms"] > MAX_P99_MS:
            failures.append(
                f"fleet p99 {payload['multiproc_p99_ms']:.1f}ms "
                f"above the {MAX_P99_MS:.0f}ms ceiling")
    return failures


def test_serving_bench():
    """Batched >= 2x per-request, p99 bounded, reloads invisible,
    fleet >= 2x batched where the cores exist."""
    payload = run_bench()
    emit_serving_json(payload)
    failures = _check(payload)
    assert not failures, "; ".join(failures)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=N_QUERIES,
                        help="queries per throughput phase "
                             "(default: %(default)d)")
    parser.add_argument("--batch", type=int, default=BATCH,
                        help="queries per request in the batched "
                             "phase (default: %(default)d)")
    parser.add_argument("--procs", type=int,
                        default=MULTIPROC_PROCS,
                        help="fleet worker processes in the multi-"
                             "process leg (default: %(default)d)")
    args = parser.parse_args()
    payload = run_bench(n_queries=args.queries, batch=args.batch,
                        procs=args.procs)
    emit_serving_json(payload)
    print(json.dumps(payload, indent=1, sort_keys=True))
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not payload["floor_enforced"]:
        print(f"note: {payload['cpu_count']} cores < "
              f"{payload['procs']} fleet workers; multi-process "
              f"speedup floor not enforced on this host",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
