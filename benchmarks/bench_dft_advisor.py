"""The DfT advisor rediscovers the paper's measures (paper §3.4).

"Analysis of the 6.7% of undetectable faults showed that most of them
show an elevated IVdd during sampling... A redesign of the flipflop ...
would make them detectable.  Another important category ... is caused
by shorts between two bias lines, which carry signals that are only
marginally different.  A simple solution would be to exchange some bias
lines."

The advisor classifies every escaped fault class of the standard design
and must, on its own, produce exactly those two recommendations; after
full DfT, neither escape category may remain.
"""

from conftest import emit

from repro.core.advisor import diagnose_escapes, render_advice


def escape_categories(analysis):
    diagnoses = diagnose_escapes(list(analysis.classes),
                                 list(analysis.result.records))
    return {d.category for d in diagnoses}, diagnoses


def test_dft_advisor(benchmark, std_path_result, dft_path_result):
    std = std_path_result.macros["comparator"]
    dft = dft_path_result.macros["comparator"]

    categories_std, _ = benchmark.pedantic(escape_categories, (std,),
                                           rounds=1, iterations=1)
    categories_dft, _ = escape_categories(dft)

    advice_std = render_advice(list(std.classes),
                               list(std.result.records),
                               std.result.total_faults)
    advice_dft = render_advice(list(dft.classes),
                               list(dft.result.records),
                               dft.result.total_faults)
    emit("dft_advisor", "STANDARD DESIGN\n" + advice_std +
         "\n\nFULL DFT\n" + advice_dft)

    # the advisor rediscovers the paper's bias-line measure...
    assert "similar_signal_bridge" in categories_std
    # ...and after applying the DfT measures that category is gone
    assert "similar_signal_bridge" not in categories_dft
