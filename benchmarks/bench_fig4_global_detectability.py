"""Paper Fig. 4: global detectability of (a) catastrophic and (b)
non-catastrophic faults.

All five macros area-scaled together.  Paper anchors: total coverage
93.3 % (cat.) / 93.1 % (non-cat.); current tests beat voltage tests
(71.8 % vs 60.8 %); 32.5 % of faults are current-only; combining both is
required for the maximum.
"""

from conftest import emit

from repro.core.report import render_fig4


def test_fig4(benchmark, std_path_result):
    cat = benchmark.pedantic(std_path_result.global_coverage, rounds=1,
                             iterations=1)
    noncat = std_path_result.global_coverage(noncat=True)
    emit("fig4_global_detectability",
         render_fig4(cat, noncat,
                     title="Fig. 4: global detectability (no DfT)"))

    for b in (cat, noncat):
        # the Venn partition is proper
        assert abs(b.voltage_only + b.current_only + b.both +
                   b.undetected - 1.0) < 1e-9
        # high but imperfect coverage (paper: 93.3 % / 93.1 %)
        assert 0.80 < b.total < 0.99
        # combining both mechanisms beats either alone
        assert b.total > b.voltage
        assert b.total > b.current
    # a large current-only share (paper: 32.5 %)
    assert cat.current_only > 0.05
    # non-catastrophic faults lean harder on current testing (paper)
    assert noncat.current_only >= cat.current_only * 0.5
