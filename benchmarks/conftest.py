"""Shared fixtures for the benchmark harness.

The heavy work — full defect-oriented path runs — is done once per
session and shared by every benchmark.  Budgets are moderate by default
(a few minutes total); set ``REPRO_FULL=1`` for paper-scale campaigns
(25 000-defect class discovery plus a 2M-defect magnitude recount).

Rendered tables are printed and also written to ``benchmarks/output/``.
"""

import os
import pathlib

import pytest

from repro.core import DefectOrientedTestPath, PathConfig
from repro.testgen import FULL_DFT, NO_DFT

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_config(dft=NO_DFT) -> PathConfig:
    if os.environ.get("REPRO_FULL"):
        return PathConfig(n_defects=25000, magnitude_defects=2_000_000,
                          dft=dft, include_noncat=True)
    return PathConfig(n_defects=10000, max_classes=30, dft=dft,
                      include_noncat=True)


@pytest.fixture(scope="session")
def std_path_result():
    """Full five-macro path run, no DfT."""
    path = DefectOrientedTestPath(bench_config(NO_DFT))
    return path.run()


@pytest.fixture(scope="session")
def dft_path_result():
    """Full five-macro path run with both DfT measures."""
    path = DefectOrientedTestPath(bench_config(FULL_DFT))
    return path.run()


@pytest.fixture(scope="session")
def comparator_analysis(std_path_result):
    return std_path_result.macros["comparator"]


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/output."""
    print(f"\n===== {name} =====")
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
