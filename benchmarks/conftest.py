"""Shared fixtures for the benchmark harness.

The heavy work — full defect-oriented path runs — is done once per
session via the campaign runner and shared by every benchmark.  Budgets
are moderate by default (a few minutes total); set ``REPRO_FULL=1`` for
paper-scale campaigns (25 000-defect class discovery plus a 2M-defect
magnitude recount).  ``REPRO_BENCH_JOBS`` sets the runner's worker
count, ``REPRO_BENCH_CACHE`` points the content-addressed results
store at a persistent directory so repeat benchmark sessions skip
already-simulated classes.

Rendered tables are printed and also written to ``benchmarks/output/``.
Campaign accounting (wall time, per-macro simulation time, cache-hit
stats) is persisted machine-readable to
``benchmarks/output/BENCH_campaign.json`` so the performance
trajectory is tracked across PRs.
"""

import json
import os
import pathlib
import time

import pytest

from repro.campaign import CampaignOptions, CampaignRunner
from repro.circuit import backend
from repro.core import PathConfig, save_path_result
from repro.testgen import FULL_DFT, NO_DFT

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: campaign metrics collected this session, keyed by run label
_CAMPAIGN_STATS = {}


def bench_config(dft=NO_DFT) -> PathConfig:
    if os.environ.get("REPRO_FULL"):
        return PathConfig(n_defects=25000, magnitude_defects=2_000_000,
                          dft=dft, include_noncat=True)
    return PathConfig(n_defects=10000, max_classes=30, dft=dft,
                      include_noncat=True)


def _bench_options() -> CampaignOptions:
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    return CampaignOptions(
        jobs=int(jobs) if jobs else 1,
        cache_dir=os.environ.get("REPRO_BENCH_CACHE"))


def _run_campaign(label: str, dft):
    runner = CampaignRunner(bench_config(dft), _bench_options())
    started = time.perf_counter()
    campaign = runner.run()
    wall = time.perf_counter() - started
    stats = campaign.metrics.as_dict()
    stats["bench_wall_time"] = wall
    _CAMPAIGN_STATS[label] = stats
    OUTPUT_DIR.mkdir(exist_ok=True)
    # measurables persisted via the PathResult.to_dict contract
    save_path_result(campaign.path_result,
                     OUTPUT_DIR / f"BENCH_result_{label}.json")
    return campaign.path_result


@pytest.fixture(scope="session")
def std_path_result():
    """Full five-macro path run, no DfT."""
    return _run_campaign("standard", NO_DFT)


@pytest.fixture(scope="session")
def dft_path_result():
    """Full five-macro path run with both DfT measures."""
    return _run_campaign("full_dft", FULL_DFT)


@pytest.fixture(scope="session")
def comparator_analysis(std_path_result):
    return std_path_result.macros["comparator"]


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/output."""
    print(f"\n===== {name} =====")
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_sessionfinish(session, exitstatus):
    """Persist machine-readable campaign stats for cross-PR tracking."""
    if not _CAMPAIGN_STATS:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = {
        "repro_full": bool(os.environ.get("REPRO_FULL")),
        "jobs": _bench_options().resolved_jobs(),
        "campaigns": _CAMPAIGN_STATS,
        # which linear backend the session ran and the largest system
        # it factored (backend, n, nnz, lane count) — distinguishes
        # macro-scale from full-chip entries in the perf trajectory
        "solver_matrix": backend.snapshot_matrix(),
    }
    (OUTPUT_DIR / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
