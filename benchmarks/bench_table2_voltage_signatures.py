"""Paper Table 2: voltage fault signatures of the comparator.

Categories: Output Stuck At / Offset (>8 mV) / Mixed / Clock value / No
deviations, for catastrophic and non-catastrophic faults.  Shape checks:
stuck-at dominates (the balanced design with small bias currents tips
easily), and the clock-value signature gains weight for non-catastrophic
faults (high-ohmic bridges on buffered clock lines only shift levels).
"""

from conftest import emit

from repro.core.report import (render_table2,
                               voltage_signature_distribution)
from repro.faultsim import VoltageSignature


def test_table2(benchmark, comparator_analysis):
    cat = comparator_analysis.result
    noncat = comparator_analysis.noncat_result
    dist_cat = benchmark.pedantic(voltage_signature_distribution, (cat,),
                                  rounds=1, iterations=1)
    dist_noncat = voltage_signature_distribution(noncat)
    emit("table2_voltage_signatures", render_table2(cat, noncat))

    # stuck-at is the dominant voltage signature (paper: ~55 % cat.)
    assert dist_cat[VoltageSignature.OUTPUT_STUCK_AT] == max(
        dist_cat.values())
    assert dist_cat[VoltageSignature.OUTPUT_STUCK_AT] > 0.3
    # distributions are proper
    assert abs(sum(dist_cat.values()) - 1.0) < 1e-9
    assert abs(sum(dist_noncat.values()) - 1.0) < 1e-9
    # clock-value weight grows for non-catastrophic faults (paper)
    assert dist_noncat[VoltageSignature.CLOCK_VALUE] >= \
        dist_cat[VoltageSignature.CLOCK_VALUE] - 1e-9
