"""Paper Table 1: catastrophic faults and fault classes (comparator).

Regenerates the defect-simulation + fault-collapsing campaign on the
comparator layout and checks the published marginals' shape: shorts
dominate the fault population (>95 % in the paper), opens are a far
larger share of *classes* than of *faults*, and only ~2 % of sprinkled
defects cause faults at all.
"""

from conftest import emit

from repro.adc.comparator import comparator_layout
from repro.core.report import render_table1
from repro.defects import analyze_defects, collapse, sprinkle, type_table


def campaign(n_defects=25000, seed=1995):
    cell = comparator_layout()
    defects = sprinkle(cell, n_defects, seed=seed)
    faults = analyze_defects(cell, defects)
    return defects, faults, collapse(faults)


def test_table1(benchmark):
    defects, faults, classes = benchmark.pedantic(campaign, rounds=1,
                                                  iterations=1)
    emit("table1_fault_classes", render_table1(classes) + (
        f"\n\n{len(defects)} defects sprinkled -> {len(faults)} faults "
        f"-> {len(classes)} classes "
        f"(paper: 25,000 -> ~585 -> 334)"))

    rows = {r.fault_type: r for r in type_table(classes)}
    # shape assertions against the paper
    assert rows["short"].fault_pct > 90.0           # paper: >95 %
    assert rows["short"].fault_pct > rows["short"].class_pct
    # opens: rare as faults, over-represented as classes
    if rows["open"].faults:
        assert rows["open"].class_pct > rows["open"].fault_pct
    # the overwhelming majority of defects are harmless
    assert len(faults) < 0.10 * len(defects)
