#!/usr/bin/env python
"""Compare two BENCH_*.json files and fail on performance regression.

CI runs each benchmark on the PR branch and (when available) on the
base branch, then diffs the machine-readable outputs with this script:

    python scripts/bench_compare.py base/BENCH_kernel.json \\
        pr/BENCH_kernel.json

Every shared numeric metric is compared.  Keys ending in ``_wall`` or
``_time`` are wall-clock measurements (lower is better), and so are
latency percentiles — keys ending in ``_ms`` or whose last segment is
``p50``/``p95``/``p99``-style (the serving benchmark's
``per_request_p99_ms``).  Keys named or
ending in ``speedup`` or ``efficiency`` (e.g. the distributed
benchmark's ``scaling_efficiency``, the serving benchmark's
``multiproc_speedup``) are ratios (higher is better), as
are throughput keys ending in ``_qps`` (``batched_qps``,
``multiproc_qps``).
Other numeric
keys are informational and only reported.  A tracked metric that moves
more than ``--threshold`` (default 20%) in the bad direction fails the
comparison with exit code 1; missing files or metrics are reported but
never fail, so the script is safe on first-run CI where no base
snapshot exists yet.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: default tolerated relative regression before the script fails
DEFAULT_THRESHOLD = 0.20


def _is_wall(key: str) -> bool:
    return key.endswith("_wall") or key.endswith("_time") or \
        key == "wall"


def _is_latency(key: str) -> bool:
    """Latency percentiles are lower-better: ``*_ms`` keys and bare
    ``pNN`` percentile names (``p50``, ``p99``, ``p99_9``)."""
    if key.startswith("max_") or key.startswith("min_"):
        return False  # floors/ceilings are constants, not samples
    if key.endswith("_ms") or key.endswith("_latency"):
        return True
    return re.fullmatch(r"p\d+(?:_\d+)?", key) is not None


def _is_speedup(key: str) -> bool:
    return key == "speedup" or key.endswith("_speedup") or \
        key == "efficiency" or key.endswith("_efficiency") or \
        key.endswith("_qps")


def _numeric_items(payload: dict, prefix: str = "") -> dict:
    """Flatten nested dicts to dotted keys, numbers only (bools are
    flags, not metrics)."""
    items = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            items[name] = float(value)
        elif isinstance(value, dict):
            items.update(_numeric_items(value, prefix=f"{name}."))
    return items


def compare(base: dict, new: dict,
            threshold: float = DEFAULT_THRESHOLD) -> list:
    """Diff two benchmark payloads.

    Returns a list of ``(metric, base, new, change, regressed)``
    tuples for every tracked (direction-carrying) metric present in
    both payloads.
    """
    base_items = _numeric_items(base)
    new_items = _numeric_items(new)
    rows = []
    for key in sorted(set(base_items) & set(new_items)):
        leaf = key.rsplit(".", 1)[-1]
        lower_better = _is_wall(leaf) or _is_latency(leaf)
        higher_better = _is_speedup(leaf)
        if not (lower_better or higher_better):
            continue
        b, n = base_items[key], new_items[key]
        if b <= 0:
            continue
        change = (n - b) / b
        regressed = (change > threshold if lower_better
                     else change < -threshold)
        rows.append((key, b, n, change, regressed))
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("base", type=Path,
                        help="baseline BENCH_*.json (e.g. from the "
                             "main branch)")
    parser.add_argument("new", type=Path,
                        help="candidate BENCH_*.json (from this PR)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated relative regression "
                             "(default: %(default).2f)")
    args = parser.parse_args()

    if not args.base.is_file():
        print(f"no baseline at {args.base}; nothing to compare "
              f"(first run?)")
        return 0
    if not args.new.is_file():
        print(f"no candidate at {args.new}; nothing to compare")
        return 0
    try:
        base = json.loads(args.base.read_text())
        new = json.loads(args.new.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable benchmark file: {exc}")
        return 0

    rows = compare(base, new, threshold=args.threshold)
    if not rows:
        print("no shared tracked metrics between the two files")
        return 0

    failed = False
    for key, b, n, change, regressed in rows:
        flag = "  REGRESSION" if regressed else ""
        print(f"{key}: {b:.4g} -> {n:.4g} ({change:+.1%}){flag}")
        failed = failed or regressed
    if failed:
        print(f"FAIL: regression beyond {args.threshold:.0%} "
              f"threshold", file=sys.stderr)
        return 1
    print("ok: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
