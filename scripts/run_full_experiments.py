"""Paper-scale experiment run: every table and figure, full budgets.

Runs the defect-oriented test path twice (standard design and full DfT)
with the paper's 25 000-defect class-discovery campaign plus a
2 000 000-defect magnitude recount, simulates *all* fault classes, and
writes every rendered table/figure to ``benchmarks/output_full/``.

Execution goes through the campaign runner: ``--jobs N`` parallelises
fault-class simulations, results are cached content-addressed under
``benchmarks/output_full/cache`` (re-runs only simulate what changed),
and a killed run continues where it stopped with ``--resume``.

Takes on the order of an hour on a laptop core.  Usage::

    python scripts/run_full_experiments.py [--quick] [--jobs N]
        [--resume]
"""

import argparse
import json
import pathlib
import sys
import time

from repro.campaign import (CampaignOptions, CampaignRunner,
                            ConsoleReporter, EventBus)
from repro.core import (PathConfig, add_engine_arguments, engine_knobs,
                        render_fig3, render_fig4,
                        render_macro_current_detectability,
                        render_table1, render_table2, render_table3,
                        save_path_result)
from repro.macrotest import macro_breakdown
from repro.testgen import (FULL_DFT, NO_DFT, defect_oriented_cost,
                           specification_oriented_cost)

OUTPUT = pathlib.Path(__file__).parents[1] / "benchmarks" / "output_full"


def log(msg: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)


def emit(name: str, text: str) -> None:
    OUTPUT.mkdir(exist_ok=True)
    (OUTPUT / f"{name}.txt").write_text(text + "\n")
    log(f"wrote {name}")
    print(text, flush=True)


def run_path(dft, args):
    knobs = engine_knobs(args)
    if args.quick:
        config = PathConfig(n_defects=12000, max_classes=60, dft=dft,
                            **knobs)
    else:
        config = PathConfig(n_defects=25000,
                            magnitude_defects=2_000_000, dft=dft,
                            **knobs)
    options = CampaignOptions(jobs=args.jobs,
                              cache_dir=args.cache_dir,
                              resume=args.resume)
    bus = EventBus()
    runner = CampaignRunner(config, options, bus=bus)
    bus.subscribe(ConsoleReporter(every=25,
                                  collector=runner.collector,
                                  jobs=options.resolved_jobs()))
    started = time.time()
    campaign = runner.run()
    metrics = campaign.metrics
    log(f"{dft.label}: campaign complete in "
        f"{time.time() - started:.0f}s ({metrics.computed} computed, "
        f"{metrics.cache_hits} cache hits, {metrics.journal_hits} "
        f"resumed, {metrics.degraded} degraded)")
    return campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budgets (minutes instead of ~1h)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    parser.add_argument("--cache-dir", default=str(OUTPUT / "cache"),
                        help="results store root (content-addressed)")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted run from its "
                             "journal")
    add_engine_arguments(parser)
    args = parser.parse_args()

    log("running standard-design campaign ...")
    std_campaign = run_path(NO_DFT, args)
    std = std_campaign.path_result
    log("running full-DfT campaign ...")
    dft_campaign = run_path(FULL_DFT, args)
    dft = dft_campaign.path_result

    OUTPUT.mkdir(exist_ok=True)
    metrics_payload = {
        "standard": std_campaign.metrics.as_dict(),
        "full_dft": dft_campaign.metrics.as_dict(),
    }
    (OUTPUT / "campaign_metrics.json").write_text(
        json.dumps(metrics_payload, indent=1, sort_keys=True))
    log("saved campaign metrics (campaign_metrics.json)")

    OUTPUT.mkdir(exist_ok=True)
    save_path_result(std, OUTPUT / "results_standard.json")
    save_path_result(dft, OUTPUT / "results_dft.json")
    log("saved raw results (results_*.json)")

    comparator = std.macros["comparator"]
    emit("table1_fault_classes", render_table1(comparator.classes))
    emit("table2_voltage_signatures",
         render_table2(comparator.result, comparator.noncat_result))
    emit("table3_current_signatures",
         render_table3(comparator.result, comparator.noncat_result))
    emit("fig3_comparator_detectability",
         render_fig3(comparator.result))
    emit("fig4_global_detectability",
         render_fig4(std.global_coverage(),
                     std.global_coverage(noncat=True),
                     title="Fig. 4: global detectability (no DfT)"))
    emit("fig5_dft_detectability",
         render_fig4(dft.global_coverage(),
                     dft.global_coverage(noncat=True),
                     title="Fig. 5: global detectability (full DfT)"))
    emit("macro_current_detectability",
         render_macro_current_detectability(std.macro_results()))

    d_cost = defect_oriented_cost()
    s_cost = specification_oriented_cost()
    emit("test_cost", "\n".join([
        f"defect-oriented test: {1000 * d_cost.total:.2f} ms "
        f"(active {1000 * (d_cost.total - 5e-3):.3f} ms)",
        f"spec-oriented test:   {1000 * s_cost.total:.2f} ms",
        f"speedup: {s_cost.total / d_cost.total:.1f}x",
    ]))

    summary = []
    for label, res in (("standard", std), ("full DfT", dft)):
        cat = res.global_coverage()
        nc = res.global_coverage(noncat=True)
        summary.append(f"{label:10s} catastrophic {100 * cat.total:5.1f}%"
                       f"  non-catastrophic {100 * nc.total:5.1f}%")
        for m in res.macro_results():
            b = macro_breakdown(m)
            summary.append(f"    {m.name:12s} current "
                           f"{100 * b.current:5.1f}%  voltage "
                           f"{100 * b.voltage:5.1f}%  total "
                           f"{100 * b.total:5.1f}%")
    emit("summary", "\n".join(summary))
    log("all experiments complete")


if __name__ == "__main__":
    main()
