"""Paper-scale experiment run: every table and figure, full budgets.

Runs the defect-oriented test path twice (standard design and full DfT)
with the paper's 25 000-defect class-discovery campaign plus a
2 000 000-defect magnitude recount, simulates *all* fault classes, and
writes every rendered table/figure to ``benchmarks/output_full/``.

Takes on the order of an hour on a laptop core.  Usage::

    python scripts/run_full_experiments.py [--quick]
"""

import argparse
import pathlib
import sys
import time

from repro.core import (DefectOrientedTestPath, PathConfig, render_fig3,
                        render_fig4, render_macro_current_detectability,
                        render_table1, render_table2, render_table3,
                        save_path_result)
from repro.macrotest import macro_breakdown
from repro.testgen import (FULL_DFT, NO_DFT, defect_oriented_cost,
                           specification_oriented_cost)

OUTPUT = pathlib.Path(__file__).parents[1] / "benchmarks" / "output_full"


def log(msg: str) -> None:
    print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)


def emit(name: str, text: str) -> None:
    OUTPUT.mkdir(exist_ok=True)
    (OUTPUT / f"{name}.txt").write_text(text + "\n")
    log(f"wrote {name}")
    print(text, flush=True)


def run_path(dft, quick: bool):
    if quick:
        config = PathConfig(n_defects=12000, max_classes=60, dft=dft)
    else:
        config = PathConfig(n_defects=25000,
                            magnitude_defects=2_000_000, dft=dft)
    path = DefectOrientedTestPath(config)
    started = time.time()

    def progress(macro, done, total):
        if done % 25 == 0 or done == total:
            log(f"  {dft.label} {macro}: {done}/{total} classes "
                f"({time.time() - started:.0f}s)")

    result = path.run(progress=progress)
    log(f"{dft.label}: path complete in {time.time() - started:.0f}s")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced budgets (minutes instead of ~1h)")
    args = parser.parse_args()

    log("running standard-design path ...")
    std = run_path(NO_DFT, args.quick)
    log("running full-DfT path ...")
    dft = run_path(FULL_DFT, args.quick)

    OUTPUT.mkdir(exist_ok=True)
    save_path_result(std, OUTPUT / "results_standard.json")
    save_path_result(dft, OUTPUT / "results_dft.json")
    log("saved raw results (results_*.json)")

    comparator = std.macros["comparator"]
    emit("table1_fault_classes", render_table1(comparator.classes))
    emit("table2_voltage_signatures",
         render_table2(comparator.result, comparator.noncat_result))
    emit("table3_current_signatures",
         render_table3(comparator.result, comparator.noncat_result))
    emit("fig3_comparator_detectability",
         render_fig3(comparator.result))
    emit("fig4_global_detectability",
         render_fig4(std.global_coverage(),
                     std.global_coverage(noncat=True),
                     title="Fig. 4: global detectability (no DfT)"))
    emit("fig5_dft_detectability",
         render_fig4(dft.global_coverage(),
                     dft.global_coverage(noncat=True),
                     title="Fig. 5: global detectability (full DfT)"))
    emit("macro_current_detectability",
         render_macro_current_detectability(std.macro_results()))

    d_cost = defect_oriented_cost()
    s_cost = specification_oriented_cost()
    emit("test_cost", "\n".join([
        f"defect-oriented test: {1000 * d_cost.total:.2f} ms "
        f"(active {1000 * (d_cost.total - 5e-3):.3f} ms)",
        f"spec-oriented test:   {1000 * s_cost.total:.2f} ms",
        f"speedup: {s_cost.total / d_cost.total:.1f}x",
    ]))

    summary = []
    for label, res in (("standard", std), ("full DfT", dft)):
        cat = res.global_coverage()
        nc = res.global_coverage(noncat=True)
        summary.append(f"{label:10s} catastrophic {100 * cat.total:5.1f}%"
                       f"  non-catastrophic {100 * nc.total:5.1f}%")
        for m in res.macro_results():
            b = macro_breakdown(m)
            summary.append(f"    {m.name:12s} current "
                           f"{100 * b.current:5.1f}%  voltage "
                           f"{100 * b.voltage:5.1f}%  total "
                           f"{100 * b.total:5.1f}%")
    emit("summary", "\n".join(summary))
    log("all experiments complete")


if __name__ == "__main__":
    main()
