"""FaultDictionary: validation, ambiguity groups, byte-stable I/O."""

import json

import numpy as np
import pytest

from repro.diagnosis import (DICTIONARY_VERSION, DictionaryEntry,
                             DictionaryError, FaultDictionary)
from repro.faultsim import signature_feature_names


def _entry(label, vector, macro="comparator", prior=0.5, count=3):
    return DictionaryEntry(label=label, macro=macro,
                           vector=tuple(vector), prior=prior,
                           count=count)


def _vec(*hot):
    v = [0.0] * len(signature_feature_names())
    for k in hot:
        v[k] = 1.0
    return tuple(v)


def _dictionary(entries, tolerance=None):
    features = signature_feature_names()
    if tolerance is None:
        tolerance = (1.0,) * len(features)
    return FaultDictionary(features=features, tolerance=tolerance,
                           entries=tuple(entries))


class TestValidation:
    def test_tolerance_width_mismatch_raises(self):
        features = signature_feature_names()
        with pytest.raises(DictionaryError, match="tolerance width"):
            FaultDictionary(features=features, tolerance=(1.0,),
                            entries=())

    def test_entry_width_mismatch_raises(self):
        with pytest.raises(DictionaryError, match="vector width"):
            _dictionary([_entry("a", (1.0, 0.0))])

    def test_entries_sorted_by_label(self):
        d = _dictionary([_entry("b", _vec(0)), _entry("a", _vec(1))])
        assert d.labels == ("a", "b")

    def test_len_and_macros(self):
        d = _dictionary([_entry("a", _vec(0), macro="ladder"),
                         _entry("b", _vec(1), macro="comparator")])
        assert len(d) == 2
        assert d.macros == ("comparator", "ladder")


class TestMatrixAndGroups:
    def test_matrix_follows_entry_order(self):
        d = _dictionary([_entry("b", _vec(1)), _entry("a", _vec(0))])
        m = d.matrix()
        assert m.shape == (2, len(d.features))
        assert m[0, 0] == 1.0  # entry "a" first after sorting
        assert m[1, 1] == 1.0

    def test_empty_dictionary_matrix_shape(self):
        d = _dictionary([])
        assert d.matrix().shape == (0, len(d.features))

    def test_ambiguity_groups_identical_vectors(self):
        d = _dictionary([_entry("a", _vec(0)), _entry("b", _vec(0)),
                         _entry("c", _vec(1))])
        groups = d.ambiguity_groups()
        assert groups["a"] == ("a", "b")
        assert groups["b"] == ("a", "b")
        assert groups["c"] == ("c",)

    def test_priors_in_entry_order(self):
        d = _dictionary([_entry("b", _vec(1), prior=0.25),
                         _entry("a", _vec(0), prior=0.75)])
        assert np.allclose(d.priors(), [0.75, 0.25])


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        d = _dictionary([_entry("a", _vec(0, 5)),
                         _entry("b", _vec(1))])
        d.meta["undetected"] = ["z"]
        back = FaultDictionary.from_dict(
            json.loads(json.dumps(d.to_dict())))
        assert back.dumps() == d.dumps()
        assert back.labels == d.labels
        assert back.meta == d.meta

    def test_dumps_is_byte_stable(self):
        build = lambda: _dictionary([_entry("b", _vec(1)),
                                     _entry("a", _vec(0))])
        assert build().dumps() == build().dumps()

    def test_version_mismatch_raises(self):
        payload = _dictionary([]).to_dict()
        payload["dictionary_version"] = DICTIONARY_VERSION + 1
        with pytest.raises(DictionaryError, match="version"):
            FaultDictionary.from_dict(payload)

    def test_malformed_payload_raises(self):
        with pytest.raises(DictionaryError, match="bad dictionary"):
            FaultDictionary.from_dict({"dictionary_version":
                                       DICTIONARY_VERSION})

    def test_save_load_round_trip(self, tmp_path):
        d = _dictionary([_entry("a", _vec(2))])
        path = tmp_path / "dict.json"
        d.save(path)
        assert FaultDictionary.load(path).dumps() == d.dumps()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DictionaryError, match="cannot read"):
            FaultDictionary.load(tmp_path / "nope.json")

    def test_load_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DictionaryError, match="not a dictionary"):
            FaultDictionary.load(path)
