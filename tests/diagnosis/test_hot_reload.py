"""Hot-reload under load: swaps must never be visible as failures.

Satellite of the serving redesign: N client threads hammer
``/v1/diagnose`` while the dictionary behind them is atomically
reloaded mid-flight.  The service must never answer 5xx, every
response must be internally consistent (no torn reads mixing old and
new generations), and once the swap completes new queries must be
served by the new version.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.diagnosis import DictionaryRegistry, compile_dictionary
from repro.diagnosis.server import serve
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())
N_CLIENTS = 8
N_RELOADS = 6


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def _generation(n_classes):
    """A dictionary whose class count encodes its generation."""
    mechs = [CurrentMechanism.IVDD, CurrentMechanism.IDDQ,
             CurrentMechanism.IINPUT]
    labeled = [
        (f"comparator:cat:{i}", "comparator", 1.0,
         _record(count=i + 1, voltage=(i % 2 == 0),
                 sig=VoltageSignature.OUTPUT_STUCK_AT
                 if i % 2 == 0 else None,
                 mechs=(mechs[i % 3],)))
        for i in range(n_classes)]
    return compile_dictionary(labeled)


#: version -> class count; queries must report a consistent pair
GENERATIONS = {v: 1 + v for v in range(1, N_RELOADS + 2)}


@pytest.fixture
def service():
    registry = DictionaryRegistry()
    registry.register("adc", dictionary=_generation(GENERATIONS[1]))
    srv = serve(registry=registry, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv, registry
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _post(srv, path, body):
    host, port = srv.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_no_5xx_no_torn_reads_during_reload(service):
    srv, registry = service
    body = json.dumps({"queries": [[0.0] * N, [0.0] * N]}).encode()
    stop = threading.Event()
    failures = []
    observed_versions = set()
    requests_done = [0] * N_CLIENTS

    def client(i):
        while not stop.is_set():
            status, payload = _post(srv, "/v1/diagnose", body)
            if status != 200:
                failures.append((status, payload))
                continue
            version = payload["version"]
            observed_versions.add(version)
            expected_classes = GENERATIONS.get(version)
            # torn read check: the version and the work done against
            # it must belong to the same generation
            if expected_classes is None:
                failures.append(("unknown version", payload))
            if payload["dictionary"] != "adc":
                failures.append(("wrong dictionary", payload))
            if len(payload["diagnoses"]) != 2:
                failures.append(("wrong diagnosis count", payload))
            requests_done[i] += 1

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    try:
        swapped_to = 1
        for generation in range(2, N_RELOADS + 2):
            # wait until traffic flows, then swap mid-flight
            baseline = sum(requests_done)
            for _ in range(1000):  # bounded: ~10s worst case
                if sum(requests_done) >= baseline + N_CLIENTS:
                    break
                time.sleep(0.01)
            registry.reload(
                "adc",
                dictionary=_generation(GENERATIONS[generation]))
            swapped_to = generation
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30)

    assert not failures, failures[:5]
    assert sum(requests_done) > 0
    # the swaps were observable: traffic saw more than one generation
    assert len(observed_versions) > 1
    # post-swap queries use the new version
    status, payload = _post(srv, "/v1/diagnose", body)
    assert status == 200
    assert payload["version"] == swapped_to
    status, payload = _post(
        srv, "/v1/diagnose",
        json.dumps({"queries": [[0.0] * N]}).encode())
    assert payload["version"] == swapped_to


def test_reload_endpoint_under_load(service, tmp_path):
    """The HTTP reload route itself swaps safely during traffic."""
    srv, registry = service
    next_path = tmp_path / "next.json"
    _generation(GENERATIONS[2]).save(next_path)
    body = json.dumps({"queries": [[0.0] * N]}).encode()
    stop = threading.Event()
    failures = []

    def client():
        while not stop.is_set():
            status, payload = _post(srv, "/v1/diagnose", body)
            if status != 200:
                failures.append((status, payload))

    threads = [threading.Thread(target=client) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        status, payload = _post(
            srv, "/v1/dictionaries/adc/reload",
            json.dumps({"path": str(next_path)}).encode())
        assert status == 200
        assert payload["version"] == 2
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30)
    assert not failures, failures[:5]
    status, payload = _post(srv, "/v1/diagnose", body)
    assert payload["version"] == 2
