"""Resolution analytics: masks, distinguishability, expected resolution."""

import numpy as np
import pytest

from repro.diagnosis import (DictionaryEntry, FaultDictionary,
                             distinguishability_matrix,
                             expected_resolution, feature_mask)
from repro.faultsim import signature_feature_names
from repro.testgen.optimize import MISSING_CODE

FEATURES = signature_feature_names()
N = len(FEATURES)


def _vec(*hot):
    v = [0.0] * N
    for k in hot:
        v[k] = 1.0
    return tuple(v)


def _entry(label, vector, prior):
    return DictionaryEntry(label=label, macro="comparator",
                           vector=vector, prior=prior, count=1)


def _dictionary(entries):
    return FaultDictionary(features=FEATURES,
                           tolerance=(1.0,) * N,
                           entries=tuple(entries))


class TestFeatureMask:
    def test_empty_selection_observes_nothing(self):
        assert not feature_mask(FEATURES, []).any()

    def test_missing_code_observes_all_voltage_features(self):
        mask = feature_mask(FEATURES, [MISSING_CODE])
        for k, name in enumerate(FEATURES):
            assert mask[k] == name.startswith("voltage:")

    def test_current_measurement_observes_its_feature_and_mechanism(self):
        mask = feature_mask(FEATURES, [("iddq", "latching", "below")])
        observed = {FEATURES[k] for k in np.flatnonzero(mask)}
        assert observed == {"current:iddq:latching:below",
                           "mechanism:iddq"}

    def test_full_selection_observes_everything(self):
        measures = [MISSING_CODE] + [
            tuple(name.split(":")[1:]) for name in FEATURES
            if name.startswith("current:")]
        assert feature_mask(FEATURES, measures).all()


class TestDistinguishabilityMatrix:
    def test_symmetric_zero_diagonal(self):
        d = _dictionary([_entry("a", _vec(0), 0.5),
                         _entry("b", _vec(1), 0.5)])
        m = distinguishability_matrix(d)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0, atol=1e-8)
        assert m[0, 1] > 0.0

    def test_all_false_mask_collapses_everything(self):
        d = _dictionary([_entry("a", _vec(0), 0.5),
                         _entry("b", _vec(1), 0.5)])
        m = distinguishability_matrix(d, mask=np.zeros(N, dtype=bool))
        assert np.allclose(m, 0.0)


class TestExpectedResolution:
    def test_unique_signatures_resolve_fully(self):
        d = _dictionary([_entry("a", _vec(0), 0.6),
                         _entry("b", _vec(1), 0.4)])
        report = expected_resolution(d)
        assert report.resolution == pytest.approx(1.0)
        assert report.expected_group_size == pytest.approx(1.0)
        assert report.n_groups == 2

    def test_identical_signatures_halve_resolution(self):
        d = _dictionary([_entry("a", _vec(3), 0.5),
                         _entry("b", _vec(3), 0.5)])
        report = expected_resolution(d)
        assert report.resolution == pytest.approx(0.5)
        assert report.expected_group_size == pytest.approx(2.0)
        assert report.groups == (("a", "b"),)

    def test_mask_degrades_resolution(self):
        # distinguishable only by a current feature the missing-code
        # test alone cannot observe
        iddq = FEATURES.index("current:iddq:latching:below")
        d = _dictionary([_entry("a", _vec(0, iddq), 0.5),
                         _entry("b", _vec(0), 0.5)])
        full = expected_resolution(d)
        masked = expected_resolution(d, measurements=[MISSING_CODE])
        assert full.resolution == pytest.approx(1.0)
        assert masked.resolution == pytest.approx(0.5)

    def test_empty_dictionary_reports_zero(self):
        report = expected_resolution(_dictionary([]))
        assert report.resolution == 0.0
        assert report.n_groups == 0

    def test_report_to_dict_round_trips(self):
        d = _dictionary([_entry("a", _vec(0), 1.0)])
        payload = expected_resolution(d).to_dict()
        assert payload["resolution"] == 1.0
        assert payload["groups"] == [["a"]]
