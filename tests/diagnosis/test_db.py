"""Unit tests for the SQLite diagnosis results backend."""

import sqlite3
import threading

import numpy as np
import pytest

from repro.diagnosis import (DiagnosisDB, DiagnosisDBError,
                             DictionaryMatcher, SCHEMA_VERSION,
                             compile_dictionary)
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def _dictionary():
    labeled = [
        ("comparator:cat:0", "comparator", 1.0, _record(
            count=4, voltage=True,
            sig=VoltageSignature.OUTPUT_STUCK_AT,
            mechs=(CurrentMechanism.IVDD,))),
        ("comparator:cat:1", "comparator", 1.0, _record(
            count=2, mechs=(CurrentMechanism.IDDQ,),
            keys=[("iddq", "latching", "below")])),
    ]
    return compile_dictionary(labeled)


def _diagnoses(dictionary, queries):
    return DictionaryMatcher(dictionary).diagnose_batch(
        np.asarray(queries, dtype=float))


@pytest.fixture
def db(tmp_path):
    handle = DiagnosisDB(tmp_path / "diag.sqlite")
    yield handle
    handle.close()


class TestRecordAndSummarise:
    def test_counts_verdicts(self, db):
        dictionary = _dictionary()
        queries = [list(e.vector) for e in dictionary.entries]
        queries.append([0.0] * N)           # pass
        queries.append([9.0] * N)           # escape
        diagnoses = _diagnoses(dictionary, queries)
        batch_id = db.record_batch("adc", 1, diagnoses, wall=0.25)
        assert batch_id == 1
        summary = db.summary()
        assert summary["batches"] == 1
        assert summary["queries"] == 4
        assert summary["matched"] == 2
        assert summary["passed"] == 1
        assert summary["unmatched"] == 1
        assert summary["wall_time"] == pytest.approx(0.25)
        assert summary["queries_per_second"] == pytest.approx(16.0)

    def test_per_dictionary_resolution(self, db):
        dictionary = _dictionary()
        matched = _diagnoses(dictionary,
                             [list(dictionary.entries[0].vector)])
        escaped = _diagnoses(dictionary, [[9.0] * N])
        db.record_batch("adc", 1, matched, wall=0.1)
        db.record_batch("adc", 2, matched + escaped, wall=0.1)
        db.record_batch("dac", 1, escaped, wall=0.1)
        rows = db.per_dictionary()
        assert [(r["dictionary"], r["version"]) for r in rows] == \
            [("adc", 1), ("adc", 2), ("dac", 1)]
        assert rows[0]["resolution_rate"] == pytest.approx(1.0)
        assert rows[1]["resolution_rate"] == pytest.approx(0.5)
        assert rows[2]["resolution_rate"] == pytest.approx(0.0)

    def test_top_classes(self, db):
        dictionary = _dictionary()
        first = list(dictionary.entries[0].vector)
        second = list(dictionary.entries[1].vector)
        db.record_batch("adc", 1, _diagnoses(
            dictionary, [first, first, second]), wall=0.1)
        db.record_batch("dac", 1, _diagnoses(
            dictionary, [second]), wall=0.1)
        top = db.top_classes()
        assert top[0]["label"] == "comparator:cat:0"
        assert top[0]["hits"] == 2
        assert top[0]["macro"] == "comparator"
        assert top[1]["hits"] == 2  # cat:1 across both dictionaries
        only_adc = db.top_classes(dictionary="adc")
        assert {r["label"]: r["hits"] for r in only_adc} == \
            {"comparator:cat:0": 2, "comparator:cat:1": 1}
        assert db.top_classes(limit=1) == top[:1]

    def test_recent_batches_and_verdict_counts(self, db):
        dictionary = _dictionary()
        for i in range(3):
            db.record_batch("adc", 1, _diagnoses(
                dictionary, [[0.0] * N]), wall=0.01, ts=100.0 + i)
        recent = db.recent_batches(limit=2)
        assert [r["id"] for r in recent] == [3, 2]
        assert recent[0]["ts"] == pytest.approx(102.0)
        assert recent[0]["n_queries"] == 1
        assert db.verdict_counts() == {"pass": 3}

    def test_empty_db_summary(self, db):
        assert db.summary()["batches"] == 0
        assert db.summary()["queries_per_second"] == 0.0
        assert db.per_dictionary() == []
        assert db.top_classes() == []
        assert db.verdict_counts() == {}


class TestPersistenceAndSafety:
    def test_reopen_sees_history(self, tmp_path):
        path = tmp_path / "diag.sqlite"
        dictionary = _dictionary()
        with DiagnosisDB(path) as db:
            db.record_batch("adc", 1, _diagnoses(
                dictionary, [[0.0] * N]), wall=0.1)
        with DiagnosisDB(path) as db:
            assert db.summary()["batches"] == 1

    def test_schema_mismatch_refused(self, tmp_path):
        path = tmp_path / "diag.sqlite"
        DiagnosisDB(path).close()
        conn = sqlite3.connect(str(path))
        with conn:
            conn.execute("UPDATE meta SET value = ? WHERE key = "
                         "'schema_version'",
                         (str(SCHEMA_VERSION + 1),))
        conn.close()
        with pytest.raises(DiagnosisDBError):
            DiagnosisDB(path)

    def test_unusable_path_raises(self, tmp_path):
        garbage = tmp_path / "garbage.sqlite"
        garbage.write_text("this is not a sqlite file, not at all")
        with pytest.raises(DiagnosisDBError):
            DiagnosisDB(garbage)

    def test_concurrent_writers(self, tmp_path):
        db = DiagnosisDB(tmp_path / "diag.sqlite")
        dictionary = _dictionary()
        diagnoses = _diagnoses(dictionary, [[0.0] * N])
        n_threads, per_thread = 8, 10

        def worker():
            for _ in range(per_thread):
                db.record_batch("adc", 1, diagnoses, wall=0.001)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        try:
            summary = db.summary()
            assert summary["batches"] == n_threads * per_thread
            assert summary["queries"] == n_threads * per_thread
        finally:
            db.close()

    def test_concurrent_multi_connection_writers(self, tmp_path):
        """Regression: several DiagnosisDB handles on one WAL file
        (the multi-process fleet shape — each worker opens its own)
        write concurrently from many threads without 'database is
        locked'.  The old single shared connection had no
        busy_timeout, so a second handle meeting the write lock
        errored instead of waiting."""
        path = tmp_path / "diag.sqlite"
        dictionary = _dictionary()
        diagnoses = _diagnoses(dictionary, [[0.0] * N])
        n_handles, n_threads, per_thread = 3, 4, 8
        handles = [DiagnosisDB(path) for _ in range(n_handles)]
        errors = []

        def worker(db):
            try:
                for _ in range(per_thread):
                    db.record_batch("adc", 1, diagnoses, wall=0.001)
            except Exception as exc:  # noqa: BLE001 — record all
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(db,))
                   for db in handles for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        try:
            assert errors == []
            total = n_handles * n_threads * per_thread
            assert handles[0].summary()["batches"] == total
            # every batch's verdict rows landed atomically with it
            assert handles[-1].verdict_counts() == {"pass": total}
        finally:
            for db in handles:
                db.close()

    def test_writes_use_per_thread_connections(self, tmp_path):
        """Each thread gets its own connection; none are shared."""
        db = DiagnosisDB(tmp_path / "diag.sqlite")
        dictionary = _dictionary()
        diagnoses = _diagnoses(dictionary, [[0.0] * N])
        seen = []

        def worker():
            db.record_batch("adc", 1, diagnoses, wall=0.001)
            # hold the object (not just its id): a reaped connection
            # would be freed and its address reused
            seen.append(db._connection())

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        try:
            assert len({id(conn) for conn in seen}) == 3
            assert db._connection() not in seen
        finally:
            db.close()

    def test_closed_db_refuses_new_connections(self, tmp_path):
        db = DiagnosisDB(tmp_path / "diag.sqlite")
        db.close()
        with pytest.raises(DiagnosisDBError):
            db.summary()

    def test_dead_thread_connections_are_reaped(self, tmp_path):
        """Regression: a ThreadingHTTPServer spawns one handler
        thread per client connection, so connections owned by
        finished threads must be released as new ones open — not
        accumulate (one leaked fd per client ever served) until
        close()."""
        db = DiagnosisDB(tmp_path / "diag.sqlite")
        dictionary = _dictionary()
        diagnoses = _diagnoses(dictionary, [[0.0] * N])

        def worker():
            db.record_batch("adc", 1, diagnoses, wall=0.001)

        try:
            for _ in range(16):
                t = threading.Thread(target=worker)
                t.start()
                t.join(timeout=30)
            # one more thread: opening its connection prunes every
            # dead thread's entry
            t = threading.Thread(target=worker)
            t.start()
            t.join(timeout=30)
            # at most the constructing thread's and the last
            # worker's connections remain registered
            assert len(db._conns) <= 2
            assert db.summary()["batches"] == 17
        finally:
            db.close()
