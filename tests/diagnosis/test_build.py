"""Dictionary compilation: priors, tolerances, caching, determinism.

The campaign-backed tests run real (tiny) campaigns; budgets are kept
small so the whole file stays in the seconds range.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.campaign import (CampaignOptions, EventBus, MetricsCollector)
from repro.campaign.events import DictionaryBuilt
from repro.campaign.store import ResultsStore
from repro.core.path import PathConfig
from repro.diagnosis import (DictionaryMatcher, FaultDictionary,
                             build_dictionary, build_from_store,
                             compile_dictionary, labeled_records,
                             tolerance_envelope)
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

#: tiny single-macro campaign — enough classes for a real dictionary,
#: fast enough for tier-1
_CONFIG = PathConfig(n_defects=1200, max_classes=3, seed=7)


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


class TestCompileDictionary:
    def test_priors_normalise_over_detectable_entries(self):
        labeled = [
            ("m:cat:0", "m", 2.0, _record(
                count=3, voltage=True,
                sig=VoltageSignature.OUTPUT_STUCK_AT)),
            ("m:cat:1", "m", 2.0, _record(
                count=1, mechs=(CurrentMechanism.IDDQ,))),
            ("m:cat:2", "m", 2.0, _record(count=10)),  # undetectable
        ]
        d = compile_dictionary(labeled)
        assert d.labels == ("m:cat:0", "m:cat:1")
        assert d.meta["undetected"] == ["m:cat:2"]
        assert d.priors() == pytest.approx([0.75, 0.25])

    def test_default_tolerance_is_all_ones(self):
        d = compile_dictionary([("a", "m", 1.0, _record(
            count=1, voltage=True))])
        assert d.tolerance == (1.0,) * len(signature_feature_names())

    def test_meta_is_preserved(self):
        d = compile_dictionary([], meta={"source": "test"})
        assert d.meta["source"] == "test"
        assert d.meta["undetected"] == []


class TestLabeledRecords:
    def _analysis(self, cat, noncat):
        return SimpleNamespace(result=cat, noncat_result=noncat)

    def _macro_result(self, records, weight=0.5):
        total = sum(r.count for r in records)
        return SimpleNamespace(records=tuple(records),
                               total_faults=total, weight=weight)

    def test_labels_scale_and_order(self):
        cat = self._macro_result([_record(count=4), _record(count=6)],
                                 weight=0.5)
        result = SimpleNamespace(macros={
            "m": self._analysis(cat, None)})
        labeled = labeled_records(result)
        assert [l[0] for l in labeled] == ["m:cat:0", "m:cat:1"]
        assert labeled[0][2] == pytest.approx(0.05)  # 0.5 / 10

    def test_noncat_alias_is_skipped(self):
        cat = self._macro_result([_record(count=4)])
        aliased = SimpleNamespace(macros={
            "m": self._analysis(cat, cat)})
        distinct = SimpleNamespace(macros={
            "m": self._analysis(
                cat, self._macro_result([_record(count=2)]))})
        assert [l[0] for l in labeled_records(aliased)] == ["m:cat:0"]
        assert [l[0] for l in labeled_records(distinct)] == \
            ["m:cat:0", "m:noncat:0"]

    def test_empty_macro_result_is_skipped(self):
        empty = self._macro_result([])
        result = SimpleNamespace(macros={
            "m": self._analysis(empty, None)})
        assert labeled_records(result) == []


class TestToleranceEnvelope:
    def test_shape_and_bounds(self):
        env = tolerance_envelope(_CONFIG)
        features = signature_feature_names()
        assert len(env) == len(features)
        for name, weight in zip(features, env):
            assert 0.05 <= weight <= 1.0
            if not name.startswith("current:"):
                assert weight == 1.0


class TestBuildDictionary:
    def test_second_build_is_all_cache_hits(self, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=str(tmp_path))
        sources = []

        def run():
            bus = EventBus()
            collector = MetricsCollector()
            bus.subscribe(collector)
            bus.subscribe(lambda e: sources.append(e.source)
                          if isinstance(e, DictionaryBuilt) else None)
            d = build_dictionary(_CONFIG, options, bus=bus,
                                 macros=["ladder"])
            return d, collector.snapshot()

        first, m1 = run()
        second, m2 = run()
        assert sources == ["computed", "cache"]
        assert first.dumps() == second.dumps()
        assert m1.computed > 0
        assert m2.computed == 0
        assert m2.cache_hits == m1.completed  # every class reused
        assert len(first) > 0
        # the dictionary blob itself landed in the store
        assert list((tmp_path / "dictionaries").glob("*.json"))

    def test_spec_change_misses_cleanly(self, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=str(tmp_path))
        build_dictionary(_CONFIG, options, macros=["ladder"])
        sources = []
        bus = EventBus()
        bus.subscribe(lambda e: sources.append(e.source)
                      if isinstance(e, DictionaryBuilt) else None)
        changed = PathConfig(n_defects=1200, max_classes=3, seed=8)
        build_dictionary(changed, options, bus=bus, macros=["ladder"])
        assert sources == ["computed"]

    def test_closed_loop_on_real_campaign(self, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=str(tmp_path))
        d = build_dictionary(_CONFIG, options,
                             macros=["ladder", "clockgen"])
        matcher = DictionaryMatcher(d)
        for entry, diagnosis in zip(d.entries,
                                    matcher.diagnose_batch(d.matrix())):
            top = diagnosis.top
            assert top.label == entry.label or \
                entry.label in diagnosis.ambiguity_group, entry.label

    def test_meta_carries_provenance(self, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=str(tmp_path))
        d = build_dictionary(_CONFIG, options, macros=["ladder"])
        assert d.meta["source"] == "campaign"
        assert d.meta["fingerprint"]
        assert d.meta["config"]["n_defects"] == 1200


class TestDeterminism:
    def test_same_seed_builds_are_byte_identical(self, tmp_path):
        """The RNG-plumbing contract: two cold builds from the same
        seed serialize to the same bytes."""
        dumps = []
        for k in range(2):
            options = CampaignOptions(
                jobs=1, cache_dir=str(tmp_path / f"store{k}"))
            d = build_dictionary(_CONFIG, options, macros=["ladder"])
            dumps.append(d.dumps())
        assert dumps[0] == dumps[1]


class TestBuildFromStore:
    def test_streaming_build_matches_campaign_classes(self, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=str(tmp_path))
        via_campaign = build_dictionary(_CONFIG, options,
                                        macros=["ladder"])
        via_store = build_from_store(ResultsStore(str(tmp_path)))
        # labels and signature vectors survive the round trip through
        # the store; priors differ (area weights are campaign-side)
        campaign_vectors = {e.label: e.vector
                            for e in via_campaign.entries}
        store_vectors = {e.label: e.vector for e in via_store.entries}
        assert store_vectors == campaign_vectors
        assert via_store.meta["source"] == "store"
