"""Closed-loop diagnosis on the fast-config comparator campaign.

The acceptance contract: every dictionary class's own signature, fed
back through the matcher, ranks that class — or its declared ambiguity
group — top-1, for 100% of classes.
"""

import pytest

from repro.campaign import CampaignOptions
from repro.core.path import PathConfig
from repro.diagnosis import DictionaryMatcher, build_dictionary

#: the fast-config comparator campaign (the bench_incremental budget)
CONFIG = PathConfig(n_defects=4000, max_classes=8,
                    include_noncat=False, seed=1995)


@pytest.fixture(scope="module")
def dictionary(tmp_path_factory):
    cache = tmp_path_factory.mktemp("diagnosis-closed-loop")
    return build_dictionary(CONFIG,
                            CampaignOptions(jobs=1,
                                            cache_dir=str(cache)),
                            macros=["comparator"])


class TestClosedLoop:
    def test_dictionary_is_non_trivial(self, dictionary):
        assert len(dictionary) >= 5
        assert dictionary.macros == ("comparator",)

    def test_every_class_ranks_itself_top1(self, dictionary):
        matcher = DictionaryMatcher(dictionary)
        diagnoses = matcher.diagnose_batch(dictionary.matrix())
        failures = []
        for entry, diagnosis in zip(dictionary.entries, diagnoses):
            top = diagnosis.top
            ok = top is not None and (
                top.label == entry.label or
                entry.label in diagnosis.ambiguity_group)
            if not ok:
                failures.append(
                    (entry.label, top.label if top else None))
        assert not failures, (
            f"{len(failures)}/{len(dictionary)} classes failed the "
            f"closed loop: {failures}")

    def test_no_self_signature_escapes(self, dictionary):
        matcher = DictionaryMatcher(dictionary)
        verdicts = {d.verdict for d in
                    matcher.diagnose_batch(dictionary.matrix())}
        assert verdicts <= {"matched", "ambiguous"}
