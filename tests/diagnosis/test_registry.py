"""Unit tests for the dictionary registry, snapshots and batching."""

import json
import threading

import numpy as np
import pytest

from repro.campaign.events import DictionaryBuilt, EventBus
from repro.campaign.store import ResultsStore
from repro.diagnosis import (DictionaryMatcher, DictionaryRegistry,
                             QueryBatcher, RegistryError,
                             UnknownDictionaryError,
                             compile_dictionary,
                             load_dictionary_source)
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def _dictionary(n_classes=2):
    labeled = []
    mechs = [CurrentMechanism.IVDD, CurrentMechanism.IDDQ,
             CurrentMechanism.IINPUT]
    for i in range(n_classes):
        labeled.append((f"comparator:cat:{i}", "comparator", 1.0,
                        _record(count=i + 1, voltage=(i % 2 == 0),
                                sig=VoltageSignature.OUTPUT_STUCK_AT
                                if i % 2 == 0 else None,
                                mechs=(mechs[i % 3],))))
    return compile_dictionary(labeled)


class TestRegisterAndGet:
    def test_first_registration_is_default(self):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_dictionary())
        registry.register("dac", dictionary=_dictionary(3))
        assert registry.default_name == "adc"
        assert registry.get().name == "adc"
        assert registry.get("dac").dictionary is not \
            registry.get("adc").dictionary
        assert registry.names() == ["adc", "dac"]
        assert len(registry) == 2
        assert "adc" in registry and "nope" not in registry

    def test_default_flag_overrides_first(self):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_dictionary())
        registry.register("dac", dictionary=_dictionary(),
                          default=True)
        assert registry.default_name == "dac"

    def test_duplicate_name_rejected(self):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_dictionary())
        with pytest.raises(RegistryError):
            registry.register("adc", dictionary=_dictionary())

    def test_needs_exactly_one_source(self):
        registry = DictionaryRegistry()
        with pytest.raises(RegistryError):
            registry.register("adc")
        with pytest.raises(RegistryError):
            registry.register("adc", dictionary=_dictionary(),
                              source="x.json")
        with pytest.raises(RegistryError):
            registry.register("adc", dictionary=_dictionary(),
                              lazy=True)

    def test_unknown_name_raises(self):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_dictionary())
        with pytest.raises(UnknownDictionaryError) as excinfo:
            registry.get("nope")
        assert "adc" in str(excinfo.value)

    def test_empty_registry_default_lookup_raises(self):
        with pytest.raises(UnknownDictionaryError):
            DictionaryRegistry().get()

    def test_snapshot_is_fully_built(self):
        registry = DictionaryRegistry(top_k=3)
        registry.register("adc", dictionary=_dictionary())
        snapshot = registry.get("adc")
        assert snapshot.version == 1
        assert snapshot.matcher is not None
        assert snapshot.matcher.top_k == 3
        assert isinstance(snapshot.batcher, QueryBatcher)
        row = snapshot.describe()
        assert row["name"] == "adc"
        assert row["classes"] == 2
        assert row["empty"] is False


class TestSources:
    def test_load_from_file(self, tmp_path):
        path = tmp_path / "d.json"
        _dictionary().save(path)
        assert len(load_dictionary_source(path)) == 2
        registry = DictionaryRegistry()
        registry.register("adc", source=path)
        assert registry.get("adc").source == str(path)

    def test_load_from_store_uses_newest_blob(self, tmp_path):
        store = ResultsStore(tmp_path)
        blob_dir = tmp_path / "dictionaries"
        blob_dir.mkdir(parents=True, exist_ok=True)
        old = _dictionary(2).to_dict()
        new = _dictionary(3).to_dict()
        (blob_dir / "old.json").write_text(json.dumps(old))
        import os
        import time
        (blob_dir / "new.json").write_text(json.dumps(new))
        past = time.time() - 60
        os.utime(blob_dir / "old.json", (past, past))
        assert len(load_dictionary_source(tmp_path)) == 3
        payload = store.latest_dictionary()
        assert len(payload["entries"]) == len(new["entries"]) == 3

    def test_store_without_dictionaries_fails(self, tmp_path):
        ResultsStore(tmp_path)
        with pytest.raises(RegistryError):
            load_dictionary_source(tmp_path)

    def test_lazy_loads_on_first_get(self, tmp_path):
        path = tmp_path / "d.json"
        _dictionary().save(path)
        registry = DictionaryRegistry()
        registry.register("adc", source=path, lazy=True)
        rows = registry.describe()
        assert rows[0]["loaded"] is False
        snapshot = registry.get("adc")
        assert snapshot.version == 1
        assert registry.describe()[0]["loaded"] is True
        assert registry.get("adc") is snapshot  # cached

    def test_lazy_bad_source_raises_registry_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        registry = DictionaryRegistry()
        registry.register("adc", source=bad, lazy=True)
        with pytest.raises(RegistryError):
            registry.get("adc")


class TestReload:
    def test_swap_bumps_version_old_snapshot_untouched(self):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_dictionary(2))
        old = registry.get("adc")
        new = registry.reload("adc", dictionary=_dictionary(3))
        assert new.version == 2
        assert registry.get("adc") is new
        # in-flight readers holding the old snapshot still see a
        # complete, consistent generation
        assert old.version == 1
        assert len(old.dictionary) == 2
        assert old.matcher is not None

    def test_reload_from_new_source_is_remembered(self, tmp_path):
        first = tmp_path / "v1.json"
        second = tmp_path / "v2.json"
        _dictionary(2).save(first)
        _dictionary(3).save(second)
        registry = DictionaryRegistry()
        registry.register("adc", source=first)
        registry.reload("adc", source=second)
        assert len(registry.get("adc").dictionary) == 3
        # a source-less reload now re-reads the *new* path
        reloaded = registry.reload("adc")
        assert reloaded.version == 3
        assert reloaded.source == str(second)

    def test_failed_reload_keeps_old_snapshot(self, tmp_path):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_dictionary(2))
        before = registry.get("adc")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(RegistryError):
            registry.reload("adc", source=str(bad))
        with pytest.raises(RegistryError):
            registry.reload("adc", dictionary=compile_dictionary([]))
        with pytest.raises(RegistryError):
            registry.reload("adc")  # no source registered
        assert registry.get("adc") is before

    def test_reload_unknown_name(self):
        with pytest.raises(UnknownDictionaryError):
            DictionaryRegistry().reload("nope",
                                        dictionary=_dictionary())

    def test_reload_emits_dictionary_built(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda event: seen.append(event)
                      if isinstance(event, DictionaryBuilt) else None)
        registry = DictionaryRegistry(bus=bus)
        registry.register("adc", dictionary=_dictionary(2))
        registry.reload("adc", dictionary=_dictionary(3))
        assert len(seen) == 2
        assert seen[-1].classes == 3
        assert seen[-1].source == "registry"


class TestQueryBatcher:
    def test_single_caller_gets_plain_results(self):
        matcher = DictionaryMatcher(_dictionary())
        batcher = QueryBatcher(matcher)
        queries = np.zeros((3, N))
        diagnoses = batcher.diagnose(queries)
        assert len(diagnoses) == 3
        assert all(d.verdict == "pass" for d in diagnoses)
        assert batcher.stats() == {"blocks": 1, "requests": 1,
                                   "queries": 3, "max_block": 3}

    def test_results_match_direct_matcher(self):
        dictionary = _dictionary(4)
        matcher = DictionaryMatcher(dictionary)
        batcher = QueryBatcher(matcher)
        queries = np.vstack([e.vector for e in dictionary.entries])
        direct = matcher.diagnose_batch(queries)
        batched = batcher.diagnose(queries)
        assert [d.verdict for d in batched] == \
            [d.verdict for d in direct]
        assert [d.top.label for d in batched] == \
            [d.top.label for d in direct]

    def test_concurrent_callers_coalesce_and_stay_ordered(self):
        dictionary = _dictionary(4)
        batcher = QueryBatcher(DictionaryMatcher(dictionary))
        vectors = [e.vector for e in dictionary.entries]
        n_threads, per_thread = 8, 16
        results = [None] * n_threads
        start = threading.Barrier(n_threads)

        def worker(i):
            start.wait()
            mine = np.vstack([vectors[(i + j) % len(vectors)]
                              for j in range(per_thread)])
            results[i] = (mine, batcher.diagnose(mine))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stats = batcher.stats()
        assert stats["requests"] == n_threads
        assert stats["queries"] == n_threads * per_thread
        # every caller got its own rows back, in its own order
        for mine, diagnoses in results:
            assert len(diagnoses) == per_thread
            for row, diagnosis in zip(mine, diagnoses):
                assert diagnosis.verdict == "matched"
                expected = dictionary.entries[
                    int(np.argmin([np.abs(e.vector - row).sum()
                                   for e in dictionary.entries]))]
                assert diagnosis.top.label == expected.label

    def test_matcher_error_propagates_to_every_waiter(self):
        matcher = DictionaryMatcher(_dictionary())
        batcher = QueryBatcher(matcher)
        with pytest.raises(ValueError):
            batcher.diagnose(np.zeros((2, N + 7)))
        # the batcher still works afterwards
        assert len(batcher.diagnose(np.zeros((1, N)))) == 1
