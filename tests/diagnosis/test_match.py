"""DictionaryMatcher: distances, verdicts, ranking, events."""

import numpy as np
import pytest

from repro.campaign import DiagnosisMetricsCollector, EventBus
from repro.diagnosis import (DictionaryEntry, DictionaryMatcher,
                             EmptyDictionaryError, FaultDictionary)
from repro.faultsim import signature_feature_names

N = len(signature_feature_names())


def _vec(*hot):
    v = np.zeros(N)
    v[list(hot)] = 1.0
    return v


def _entry(label, vector, prior, macro="comparator"):
    return DictionaryEntry(label=label, macro=macro,
                           vector=tuple(float(x) for x in vector),
                           prior=prior, count=1)


def _dictionary(entries):
    return FaultDictionary(features=signature_feature_names(),
                           tolerance=(1.0,) * N,
                           entries=tuple(entries))


@pytest.fixture
def simple():
    """Three distinguishable classes plus an ambiguous pair."""
    return _dictionary([
        _entry("a", _vec(0, 1), prior=0.4),
        _entry("b", _vec(5), prior=0.3),
        _entry("twin1", _vec(8, 9), prior=0.1),
        _entry("twin2", _vec(8, 9), prior=0.2),
    ])


class TestConstruction:
    def test_empty_dictionary_raises(self):
        with pytest.raises(EmptyDictionaryError):
            DictionaryMatcher(_dictionary([]))

    def test_zero_tolerance_raises(self):
        d = FaultDictionary(features=signature_feature_names(),
                            tolerance=(0.0,) * N,
                            entries=(_entry("a", _vec(0), 1.0),))
        with pytest.raises(EmptyDictionaryError, match="tolerance"):
            DictionaryMatcher(d)

    def test_zero_priors_fall_back_to_flat(self, simple):
        d = _dictionary([_entry("a", _vec(0), 0.0),
                         _entry("b", _vec(1), 0.0)])
        m = DictionaryMatcher(d)
        assert m.diagnose(_vec(0)).top.label == "a"


class TestDistances:
    def test_self_distance_near_zero(self, simple):
        m = DictionaryMatcher(simple)
        d = m.distances(simple.matrix())
        assert np.allclose(np.diag(d)[:2], 0.0, atol=1e-8)

    def test_distances_bounded_for_binary_vectors(self, simple):
        m = DictionaryMatcher(simple)
        d = m.distances(np.vstack([_vec(), np.ones(N)]))
        assert float(d.min()) >= 0.0
        assert float(d.max()) <= 1.0 + 1e-12

    def test_width_mismatch_raises(self, simple):
        m = DictionaryMatcher(simple)
        with pytest.raises(ValueError, match="width"):
            m.distances(np.zeros((1, N + 1)))


class TestVerdicts:
    def test_all_zero_query_passes(self, simple):
        m = DictionaryMatcher(simple)
        diagnosis = m.diagnose(_vec())
        assert diagnosis.verdict == "pass"
        assert diagnosis.top is None

    def test_exact_match_is_matched_top1(self, simple):
        m = DictionaryMatcher(simple)
        diagnosis = m.diagnose(_vec(0, 1))
        assert diagnosis.verdict == "matched"
        assert diagnosis.top.label == "a"
        assert diagnosis.top.distance < 1e-8
        assert diagnosis.ambiguity_group == ()

    def test_exact_match_outranks_high_prior_neighbour(self):
        # "near" shares 2 of 3 hot features with the query and holds
        # almost all prior mass; the exact zero-distance match must
        # still rank first (sigma -> 0 ordering).
        d = _dictionary([_entry("exact", _vec(0, 1, 2), prior=0.01),
                         _entry("near", _vec(0, 1, 3), prior=0.99)])
        m = DictionaryMatcher(d)
        assert m.diagnose(_vec(0, 1, 2)).top.label == "exact"

    def test_ambiguous_pair_reports_group(self, simple):
        m = DictionaryMatcher(simple)
        diagnosis = m.diagnose(_vec(8, 9))
        assert diagnosis.verdict == "ambiguous"
        assert diagnosis.ambiguity_group == ("twin1", "twin2")
        # priors order the group members: twin2 (0.2) > twin1 (0.1)
        assert diagnosis.top.label == "twin2"

    def test_far_query_is_escape_unmatched(self, simple):
        m = DictionaryMatcher(simple)
        diagnosis = m.diagnose(_vec(*range(16, 28)))
        assert diagnosis.verdict == "escape_unmatched"
        assert diagnosis.candidates  # still reports nearest classes

    def test_batch_order_matches_input_order(self, simple):
        m = DictionaryMatcher(simple)
        out = m.diagnose_batch(np.vstack([_vec(5), _vec(), _vec(0, 1)]))
        assert [d.verdict for d in out] == ["matched", "pass",
                                            "matched"]
        assert out[0].top.label == "b"
        assert out[2].top.label == "a"

    def test_top_k_truncates_candidates(self, simple):
        m = DictionaryMatcher(simple, top_k=2)
        assert len(m.diagnose(_vec(5)).candidates) == 2


class TestClosedLoop:
    def test_every_entry_self_matches(self, simple):
        m = DictionaryMatcher(simple)
        for entry, diagnosis in zip(
                simple.entries, m.diagnose_batch(simple.matrix())):
            top = diagnosis.top
            assert top.label == entry.label or \
                entry.label in diagnosis.ambiguity_group, entry.label


class TestEvents:
    def test_batch_event_counts(self, simple):
        bus = EventBus()
        collector = DiagnosisMetricsCollector()
        bus.subscribe(collector)
        m = DictionaryMatcher(simple, bus=bus)
        m.diagnose_batch(np.vstack([
            _vec(0, 1), _vec(8, 9), _vec(), _vec(*range(16, 28))]))
        snap = collector.snapshot()
        assert snap.batches == 1
        assert snap.queries == 4
        assert snap.matched == 1
        assert snap.ambiguous == 1
        assert snap.passed == 1
        assert snap.unmatched == 1
        assert snap.wall_time > 0.0
        assert snap.queries_per_second > 0.0
