"""End-to-end service tests: registry -> serve -> query over a socket.

Covers the v1 routes, the JSON error envelope, the deprecated
unversioned aliases (byte-identical bodies, ``Deprecation`` header)
and the reload endpoint.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.diagnosis import (DiagnosisDB, DictionaryRegistry,
                             compile_dictionary)
from repro.diagnosis.server import serve
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def _build_dictionary():
    labeled = [
        ("comparator:cat:0", "comparator", 1.0, _record(
            count=4, voltage=True,
            sig=VoltageSignature.OUTPUT_STUCK_AT,
            mechs=(CurrentMechanism.IVDD,),
            keys=[("ivdd", "sampling", "above")])),
        ("comparator:cat:1", "comparator", 1.0, _record(
            count=2, mechs=(CurrentMechanism.IDDQ,),
            keys=[("iddq", "latching", "below")])),
    ]
    return compile_dictionary(labeled)


def _other_dictionary():
    """A distinguishable second build (one extra class)."""
    labeled = [
        ("comparator:cat:0", "comparator", 1.0, _record(
            count=4, voltage=True,
            sig=VoltageSignature.OUTPUT_STUCK_AT)),
        ("comparator:cat:1", "comparator", 1.0, _record(
            count=2, mechs=(CurrentMechanism.IDDQ,),
            keys=[("iddq", "latching", "below")])),
        ("comparator:cat:2", "comparator", 1.0, _record(
            count=1, mechs=(CurrentMechanism.IVDD,),
            keys=[("ivdd", "amplification", "above")])),
    ]
    return compile_dictionary(labeled)


def _start(registry=None, db=None, dictionary=None):
    if registry is None and dictionary is None:
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_build_dictionary())
    srv = serve(registry=registry, dictionary=dictionary, port=0,
                db=db)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, thread


@pytest.fixture
def server():
    """A live server on an ephemeral port; torn down after the test."""
    srv, thread = _start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _url(srv, path):
    host, port = srv.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(srv, path):
    try:
        with urllib.request.urlopen(_url(srv, path), timeout=5) as r:
            return r.status, json.loads(r.read()), dict(r.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def _post(srv, path, body: bytes):
    request = urllib.request.Request(
        _url(srv, path), data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as r:
            return r.status, json.loads(r.read()), dict(r.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestEndToEnd:
    def test_health(self, server):
        status, payload, _ = _get(server, "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["classes"] == 2
        assert payload["features"] == N
        assert payload["macros"] == ["comparator"]
        assert payload["default"] == "adc"
        assert payload["dictionaries"][0]["name"] == "adc"

    def test_diagnose_query_vectors(self, server):
        queries = [list(e.vector)
                   for e in server.dictionary.entries]
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"queries": queries}).encode())
        assert status == 200
        assert payload["dictionary"] == "adc"
        assert payload["version"] == 1
        diagnoses = payload["diagnoses"]
        assert len(diagnoses) == 2
        for entry, diagnosis in zip(server.dictionary.entries,
                                    diagnoses):
            assert diagnosis["verdict"] == "matched"
            assert diagnosis["candidates"][0]["label"] == entry.label

    def test_diagnose_record_dicts(self, server):
        from repro.core.serialize import record_to_dict
        record = _record(count=2,
                         mechs=(CurrentMechanism.IDDQ,),
                         keys=[("iddq", "latching", "below")])
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"records": [record_to_dict(record)]}).encode())
        assert status == 200
        top = payload["diagnoses"][0]["candidates"][0]
        assert top["label"] == "comparator:cat:1"

    def test_diagnose_named_dictionary(self, server):
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"queries": [[0.0] * N],
                        "dictionary": "adc"}).encode())
        assert status == 200
        assert payload["diagnoses"][0]["verdict"] == "pass"

    def test_metrics_accumulate(self, server):
        _post(server, "/v1/diagnose",
              json.dumps({"queries": [[0.0] * N]}).encode())
        status, payload, _ = _get(server, "/v1/metrics")
        assert status == 200
        assert payload["batches"] == 1
        assert payload["queries"] == 1
        assert payload["passed"] == 1
        assert payload["dictionary_classes"] == 2
        assert payload["wall_time"] >= 0.0
        assert payload["requests"]["/v1/diagnose"] == 1
        assert payload["batching"]["adc"]["blocks"] == 1

    def test_list_and_get_dictionaries(self, server):
        status, payload, _ = _get(server, "/v1/dictionaries")
        assert status == 200
        assert [d["name"] for d in payload["dictionaries"]] == ["adc"]
        status, payload, _ = _get(server, "/v1/dictionaries/adc")
        assert status == 200
        assert payload["classes"] == 2
        assert payload["default"] is True


class TestErrorEnvelope:
    """Every failure is {"error": {"code", "message"}}."""

    def test_malformed_json_is_400(self, server):
        status, payload, _ = _post(server, "/v1/diagnose",
                                   b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "JSON" in payload["error"]["message"]

    def test_missing_keys_is_400(self, server):
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"nope": 1}).encode())
        assert status == 400
        assert "queries" in payload["error"]["message"]

    def test_wrong_width_is_400(self, server):
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"queries": [[1.0, 2.0]]}).encode())
        assert status == 400
        assert "width" in payload["error"]["message"]

    def test_bad_record_is_400(self, server):
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"records": [{"bogus": True}]}).encode())
        assert status == 400
        assert "records[0]" in payload["error"]["message"]

    def test_unknown_paths_are_404(self, server):
        status, payload, _ = _get(server, "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert _post(server, "/v1/nope", b"{}")[0] == 404

    def test_wrong_method_is_405_with_allow(self, server):
        status, payload, headers = _get(server, "/v1/diagnose")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert headers.get("Allow") == "POST"
        status, payload, _ = _post(server, "/v1/health", b"{}")
        assert status == 405

    def test_unknown_dictionary_is_404(self, server):
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"queries": [[0.0] * N],
                        "dictionary": "nope"}).encode())
        assert status == 404
        assert payload["error"]["code"] == "unknown_dictionary"
        assert "adc" in payload["error"]["message"]


class TestLegacyAliases:
    """The unversioned routes are deprecated aliases of /v1/."""

    def test_bodies_are_byte_identical(self, server):
        for legacy, v1 in (("/health", "/v1/health"),
                           ("/metrics", "/v1/metrics")):
            _, legacy_payload, _ = _get(server, legacy)
            _, v1_payload, _ = _get(server, v1)
            # the metrics payload carries counters that move between
            # calls; compare the stable shape keys instead for it
            if legacy == "/health":
                assert legacy_payload == v1_payload
            else:
                assert set(legacy_payload) == set(v1_payload)
        body = json.dumps(
            {"queries": [list(e.vector)
                         for e in server.dictionary.entries]}
            ).encode()
        _, legacy_payload, _ = _post(server, "/diagnose", body)
        _, v1_payload, _ = _post(server, "/v1/diagnose", body)
        assert json.dumps(legacy_payload, sort_keys=True) == \
            json.dumps(v1_payload, sort_keys=True)

    def test_legacy_routes_send_deprecation_header(self, server):
        for path in ("/health", "/metrics"):
            _, _, headers = _get(server, path)
            assert headers.get("Deprecation") == "true"
            assert "successor-version" in headers.get("Link", "")
        _, _, headers = _post(
            server, "/diagnose",
            json.dumps({"queries": [[0.0] * N]}).encode())
        assert headers.get("Deprecation") == "true"

    def test_v1_routes_are_not_deprecated(self, server):
        _, _, headers = _get(server, "/v1/health")
        assert "Deprecation" not in headers

    def test_legacy_errors_share_the_envelope(self, server):
        status, payload, _ = _post(server, "/diagnose", b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"


class TestReloadEndpoint:
    def test_reload_from_path(self, server, tmp_path):
        path = tmp_path / "next.json"
        _other_dictionary().save(path)
        status, payload, _ = _post(
            server, "/v1/dictionaries/adc/reload",
            json.dumps({"path": str(path)}).encode())
        assert status == 200
        assert payload == {"reloaded": True, "name": "adc",
                           "version": 2, "classes": 3}
        status, payload, _ = _get(server, "/v1/dictionaries/adc")
        assert payload["version"] == 2
        assert payload["classes"] == 3

    def test_reload_unknown_name_is_404(self, server):
        status, payload, _ = _post(
            server, "/v1/dictionaries/nope/reload", b"")
        assert status == 404
        assert payload["error"]["code"] == "unknown_dictionary"

    def test_failed_reload_is_409_and_keeps_serving(self, server,
                                                    tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        status, payload, _ = _post(
            server, "/v1/dictionaries/adc/reload",
            json.dumps({"path": str(bad)}).encode())
        assert status == 409
        assert payload["error"]["code"] == "reload_failed"
        # the old snapshot still serves
        status, payload, _ = _post(
            server, "/v1/diagnose",
            json.dumps({"queries": [[0.0] * N]}).encode())
        assert status == 200


class TestResultsBackend:
    def test_served_batches_land_in_sqlite(self, tmp_path):
        db = DiagnosisDB(tmp_path / "diag.sqlite")
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_build_dictionary())
        srv, thread = _start(registry=registry, db=db)
        try:
            entries = registry.get("adc").dictionary.entries
            _post(srv, "/v1/diagnose", json.dumps(
                {"queries": [list(entries[0].vector),
                             [0.0] * N]}).encode())
            status, payload, _ = _get(srv, "/v1/metrics")
            assert payload["db"]["queries"] == 2
            assert payload["db"]["per_dictionary"][0]["dictionary"] \
                == "adc"
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)
            db.close()
        reopened = DiagnosisDB(tmp_path / "diag.sqlite")
        try:
            summary = reopened.summary()
            assert summary["batches"] == 1
            assert summary["queries"] == 2
            assert summary["matched"] == 1
            assert summary["passed"] == 1
        finally:
            reopened.close()


class TestDeprecatedSingleDictionaryForm:
    def test_serve_dictionary_warns_and_works(self):
        with pytest.warns(DeprecationWarning):
            srv = serve(_build_dictionary(), port=0)
        thread = threading.Thread(target=srv.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            status, payload, _ = _get(srv, "/v1/health")
            assert status == 200
            assert payload["default"] == "default"
            assert payload["classes"] == 2
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)


class TestEmptyDictionary:
    def test_diagnose_answers_503_health_stays_up(self):
        with pytest.warns(DeprecationWarning):
            srv = serve(compile_dictionary([]), port=0)
        thread = threading.Thread(target=srv.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            status, payload, _ = _post(
                srv, "/v1/diagnose",
                json.dumps({"queries": [[0.0] * N]}).encode())
            assert status == 503
            assert payload["error"]["code"] == "empty_dictionary"
            assert "no detectable classes" in \
                payload["error"]["message"]
            assert _get(srv, "/v1/health")[0] == 200
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)


class TestMonotonicClocks:
    """Regression: uptime and snapshot age survive wall-clock steps.

    ``/v1/metrics`` used to compute uptime as ``time.time() -
    started``, so an NTP step made it jump or go negative; it now
    runs on the monotonic clock, with the wall-clock birth stamp
    reported separately as ``started_at``.
    """

    def test_uptime_ignores_wall_clock_step(self, server,
                                            monkeypatch):
        import time as time_module

        from repro.diagnosis import server as server_module

        before = server.local_metrics()
        assert before["uptime"] >= 0.0
        # step the wall clock an hour backwards
        real_time = time_module.time
        monkeypatch.setattr(server_module.time, "time",
                            lambda: real_time() - 3600.0)
        after = server.local_metrics()
        assert after["uptime"] >= before["uptime"] >= 0.0
        assert after["uptime"] < 600.0  # not an hour-sized jump
        # the wall-clock stamp is separate and untouched by uptime
        assert after["started_at"] == server.started_at

    def test_metrics_route_reports_sane_uptime(self, server):
        status, payload, _ = _get(server, "/v1/metrics")
        assert status == 200
        assert 0.0 <= payload["uptime"] < 600.0
        assert payload["started_at"] > 0

    def test_snapshot_age_is_monotonic(self, server, monkeypatch):
        import time as time_module

        from repro.diagnosis import registry as registry_module

        snapshot = server.registry.get("adc")
        age = snapshot.age()
        assert age >= 0.0
        real_time = time_module.time
        monkeypatch.setattr(registry_module.time, "time",
                            lambda: real_time() - 3600.0)
        assert snapshot.age() >= age >= 0.0
        assert snapshot.age() < 600.0
        # metrics report the age per served dictionary
        status, payload, _ = _get(server, "/v1/metrics")
        assert payload["batching"]["adc"]["age"] >= 0.0


class TestDrainBeforeServe:
    def test_drain_before_serve_forever_does_not_hang(self):
        """Regression: drain() used to call shutdown()
        unconditionally, which blocks forever when serve_forever()
        has not started yet — a SIGTERM landing in a fleet worker's
        startup window hung the draining thread."""
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_build_dictionary())
        srv = serve(registry=registry, port=0)
        try:
            done = threading.Event()
            results = []

            def call():
                results.append(srv.drain(timeout=1.0))
                done.set()

            threading.Thread(target=call, daemon=True).start()
            assert done.wait(5.0), \
                "drain() hung before serve_forever() started"
            assert results == [True]
            # a serve_forever() racing in after the drain must not
            # start accepting — it returns immediately
            t = threading.Thread(target=srv.serve_forever,
                                 daemon=True)
            t.start()
            t.join(timeout=5.0)
            assert not t.is_alive()
        finally:
            srv.server_close()

    def test_drain_still_stops_a_serving_server(self):
        registry = DictionaryRegistry()
        registry.register("adc", dictionary=_build_dictionary())
        srv, thread = _start(registry=registry)
        try:
            assert srv.drain(timeout=5.0) is True
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        finally:
            srv.server_close()
