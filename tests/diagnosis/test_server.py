"""End-to-end server tests: build -> serve -> query over a socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.diagnosis import compile_dictionary
from repro.diagnosis.server import serve
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def _build_dictionary():
    labeled = [
        ("comparator:cat:0", "comparator", 1.0, _record(
            count=4, voltage=True,
            sig=VoltageSignature.OUTPUT_STUCK_AT,
            mechs=(CurrentMechanism.IVDD,),
            keys=[("ivdd", "sampling", "above")])),
        ("comparator:cat:1", "comparator", 1.0, _record(
            count=2, mechs=(CurrentMechanism.IDDQ,),
            keys=[("iddq", "latching", "below")])),
    ]
    return compile_dictionary(labeled)


@pytest.fixture
def server():
    """A live server on an ephemeral port; torn down after the test."""
    srv = serve(_build_dictionary(), port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _url(srv, path):
    host, port = srv.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(srv, path):
    try:
        with urllib.request.urlopen(_url(srv, path), timeout=5) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(srv, path, body: bytes):
    request = urllib.request.Request(
        _url(srv, path), data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndToEnd:
    def test_health(self, server):
        status, payload = _get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["classes"] == 2
        assert payload["features"] == N
        assert payload["macros"] == ["comparator"]

    def test_diagnose_query_vectors(self, server):
        queries = [list(e.vector)
                   for e in server.dictionary.entries]
        status, payload = _post(
            server, "/diagnose",
            json.dumps({"queries": queries}).encode())
        assert status == 200
        diagnoses = payload["diagnoses"]
        assert len(diagnoses) == 2
        for entry, diagnosis in zip(server.dictionary.entries,
                                    diagnoses):
            assert diagnosis["verdict"] == "matched"
            assert diagnosis["candidates"][0]["label"] == entry.label

    def test_diagnose_record_dicts(self, server):
        from repro.core.serialize import record_to_dict
        record = _record(count=2,
                         mechs=(CurrentMechanism.IDDQ,),
                         keys=[("iddq", "latching", "below")])
        status, payload = _post(
            server, "/diagnose",
            json.dumps({"records": [record_to_dict(record)]}).encode())
        assert status == 200
        top = payload["diagnoses"][0]["candidates"][0]
        assert top["label"] == "comparator:cat:1"

    def test_pass_verdict_for_zero_vector(self, server):
        status, payload = _post(
            server, "/diagnose",
            json.dumps({"queries": [[0.0] * N]}).encode())
        assert status == 200
        assert payload["diagnoses"][0]["verdict"] == "pass"

    def test_metrics_accumulate(self, server):
        _post(server, "/diagnose",
              json.dumps({"queries": [[0.0] * N]}).encode())
        status, payload = _get(server, "/metrics")
        assert status == 200
        assert payload["batches"] == 1
        assert payload["queries"] == 1
        assert payload["passed"] == 1
        assert payload["dictionary_classes"] == 2
        assert payload["wall_time"] >= 0.0


class TestErrorPaths:
    def test_malformed_json_is_400(self, server):
        status, payload = _post(server, "/diagnose", b"{not json")
        assert status == 400
        assert "JSON" in payload["error"]

    def test_missing_keys_is_400(self, server):
        status, payload = _post(server, "/diagnose",
                                json.dumps({"nope": 1}).encode())
        assert status == 400
        assert "queries" in payload["error"]

    def test_wrong_width_is_400(self, server):
        status, payload = _post(
            server, "/diagnose",
            json.dumps({"queries": [[1.0, 2.0]]}).encode())
        assert status == 400
        assert "width" in payload["error"]

    def test_bad_record_is_400(self, server):
        status, payload = _post(
            server, "/diagnose",
            json.dumps({"records": [{"bogus": True}]}).encode())
        assert status == 400
        assert "records[0]" in payload["error"]

    def test_unknown_paths_are_404(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", b"{}")[0] == 404


class TestEmptyDictionary:
    def test_diagnose_answers_503_health_stays_up(self):
        srv = serve(compile_dictionary([]), port=0)
        thread = threading.Thread(target=srv.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            status, payload = _post(
                srv, "/diagnose",
                json.dumps({"queries": [[0.0] * N]}).encode())
            assert status == 503
            assert "no detectable classes" in payload["error"]
            assert _get(srv, "/health")[0] == 200
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)
