"""The ``python -m repro diagnose`` command surface."""

import json

import numpy as np
import pytest

from repro.cli import main as repro_main
from repro.diagnosis import (DiagnosisDB, DictionaryMatcher,
                             RegistryError, compile_dictionary)
from repro.diagnosis.cli import build_registry, parse_dictionary_specs
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


@pytest.fixture
def dictionary_path(tmp_path):
    labeled = [
        ("comparator:cat:0", "comparator", 1.0, _record(
            count=4, voltage=True,
            sig=VoltageSignature.OUTPUT_STUCK_AT)),
        ("comparator:cat:1", "comparator", 1.0, _record(
            count=2, mechs=(CurrentMechanism.IDDQ,),
            keys=[("iddq", "latching", "below")])),
    ]
    path = tmp_path / "dict.json"
    compile_dictionary(labeled).save(path)
    return str(path)


class TestDispatch:
    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            repro_main(["diagnose", "bogus"])


class TestQuery:
    def test_self_test_passes(self, dictionary_path, capsys):
        code = repro_main(["diagnose", "query",
                           "--dictionary", dictionary_path,
                           "--self-test", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["classes"] == 2
        assert payload["top1"] == 2
        assert payload["failures"] == []

    def test_query_file_json_output(self, dictionary_path, tmp_path,
                                    capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps({"queries": [[0.0] * N]}))
        code = repro_main(["diagnose", "query",
                           "--dictionary", dictionary_path,
                           "--input", str(queries), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["diagnoses"][0]["verdict"] == "pass"

    def test_malformed_input_is_an_error(self, dictionary_path,
                                         tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = repro_main(["diagnose", "query",
                           "--dictionary", dictionary_path,
                           "--input", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_dictionary_is_an_error(self, tmp_path, capsys):
        code = repro_main(["diagnose", "query", "--dictionary",
                           str(tmp_path / "nope.json"),
                           "--self-test"])
        assert code == 2


class TestDictionarySpecs:
    """The registry-building half of ``diagnose serve``."""

    def test_named_specs(self, dictionary_path):
        specs = parse_dictionary_specs(
            [f"adc={dictionary_path}", f"dac={dictionary_path}"])
        assert specs == [("adc", dictionary_path),
                         ("dac", dictionary_path)]

    def test_bare_path_is_deprecated_default(self, dictionary_path):
        with pytest.warns(DeprecationWarning):
            specs = parse_dictionary_specs([dictionary_path])
        assert specs == [("default", dictionary_path)]

    def test_second_bare_path_uses_file_stem(self, dictionary_path):
        with pytest.warns(DeprecationWarning):
            specs = parse_dictionary_specs([dictionary_path,
                                            dictionary_path])
        assert specs[0][0] == "default"
        assert specs[1][0] == "dict"

    def test_duplicate_names_rejected(self, dictionary_path):
        with pytest.raises(RegistryError):
            parse_dictionary_specs([f"adc={dictionary_path}",
                                    f"adc={dictionary_path}"])

    def test_malformed_spec_rejected(self):
        with pytest.raises(RegistryError):
            parse_dictionary_specs(["=path.json"])
        with pytest.raises(RegistryError):
            parse_dictionary_specs(["name="])

    def test_build_registry(self, dictionary_path):
        registry = build_registry([f"adc={dictionary_path}",
                                   f"dac={dictionary_path}"],
                                  top_k=3, default="dac")
        assert registry.names() == ["adc", "dac"]
        assert registry.default_name == "dac"
        assert registry.get("adc").matcher.top_k == 3

    def test_build_registry_bad_default(self, dictionary_path):
        with pytest.raises(RegistryError):
            build_registry([f"adc={dictionary_path}"],
                           default="nope")

    def test_build_registry_lazy_defers_loading(self, tmp_path):
        # a lazy registry registers a missing path without touching it
        registry = build_registry(
            [f"adc={tmp_path / 'not-yet.json'}"], lazy=True)
        assert registry.describe()[0]["loaded"] is False

    def test_serve_rejects_bad_dictionary(self, tmp_path, capsys):
        code = repro_main(["diagnose", "serve", "--dictionary",
                           f"adc={tmp_path / 'nope.json'}",
                           "--port", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestReportDB:
    @pytest.fixture
    def db_path(self, tmp_path, dictionary_path):
        from repro.diagnosis import FaultDictionary
        dictionary = FaultDictionary.load(dictionary_path)
        matcher = DictionaryMatcher(dictionary)
        diagnoses = matcher.diagnose_batch(np.vstack(
            [dictionary.entries[0].vector, np.zeros(N)]))
        path = tmp_path / "diag.sqlite"
        with DiagnosisDB(path) as db:
            db.record_batch("adc", 1, diagnoses, wall=0.05)
        return str(path)

    def test_report_db_json(self, db_path, capsys):
        code = repro_main(["diagnose", "report", "--db", db_path,
                           "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["summary"]["queries"] == 2
        assert payload["summary"]["matched"] == 1
        assert payload["per_dictionary"][0]["dictionary"] == "adc"
        assert payload["top_classes"][0]["label"] == \
            "comparator:cat:0"

    def test_report_db_plain(self, db_path, capsys):
        code = repro_main(["diagnose", "report", "--db", db_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "served: 2 queries" in out
        assert "adc v1" in out

    def test_report_needs_a_source(self, capsys):
        code = repro_main(["diagnose", "report"])
        assert code == 2
        assert "--dictionary or --db" in capsys.readouterr().err

    def test_report_db_unreadable(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.sqlite"
        garbage.write_text("not a database")
        code = repro_main(["diagnose", "report", "--db",
                           str(garbage)])
        assert code == 2


class TestReport:
    def test_report_plain(self, dictionary_path, capsys):
        code = repro_main(["diagnose", "report",
                           "--dictionary", dictionary_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "expected resolution" in out

    def test_report_json(self, dictionary_path, capsys):
        code = repro_main(["diagnose", "report",
                           "--dictionary", dictionary_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["classes"] == 2
        assert payload["resolution"] == pytest.approx(1.0)
        assert payload["min_pair_distance"] > 0.0
