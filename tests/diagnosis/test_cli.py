"""The ``python -m repro diagnose`` command surface."""

import json

import pytest

from repro.cli import main as repro_main
from repro.diagnosis import compile_dictionary
from repro.faultsim import (CurrentMechanism, VoltageSignature,
                            signature_feature_names)
from repro.macrotest.coverage import DetectionRecord

N = len(signature_feature_names())


def _record(count=5, voltage=False, sig=None, mechs=(), keys=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           voltage_signature=sig,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


@pytest.fixture
def dictionary_path(tmp_path):
    labeled = [
        ("comparator:cat:0", "comparator", 1.0, _record(
            count=4, voltage=True,
            sig=VoltageSignature.OUTPUT_STUCK_AT)),
        ("comparator:cat:1", "comparator", 1.0, _record(
            count=2, mechs=(CurrentMechanism.IDDQ,),
            keys=[("iddq", "latching", "below")])),
    ]
    path = tmp_path / "dict.json"
    compile_dictionary(labeled).save(path)
    return str(path)


class TestDispatch:
    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            repro_main(["diagnose", "bogus"])


class TestQuery:
    def test_self_test_passes(self, dictionary_path, capsys):
        code = repro_main(["diagnose", "query",
                           "--dictionary", dictionary_path,
                           "--self-test", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["classes"] == 2
        assert payload["top1"] == 2
        assert payload["failures"] == []

    def test_query_file_json_output(self, dictionary_path, tmp_path,
                                    capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(json.dumps({"queries": [[0.0] * N]}))
        code = repro_main(["diagnose", "query",
                           "--dictionary", dictionary_path,
                           "--input", str(queries), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["diagnoses"][0]["verdict"] == "pass"

    def test_malformed_input_is_an_error(self, dictionary_path,
                                         tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = repro_main(["diagnose", "query",
                           "--dictionary", dictionary_path,
                           "--input", str(bad)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_dictionary_is_an_error(self, tmp_path, capsys):
        code = repro_main(["diagnose", "query", "--dictionary",
                           str(tmp_path / "nope.json"),
                           "--self-test"])
        assert code == 2


class TestReport:
    def test_report_plain(self, dictionary_path, capsys):
        code = repro_main(["diagnose", "report",
                           "--dictionary", dictionary_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "expected resolution" in out

    def test_report_json(self, dictionary_path, capsys):
        code = repro_main(["diagnose", "report",
                           "--dictionary", dictionary_path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["classes"] == 2
        assert payload["resolution"] == pytest.approx(1.0)
        assert payload["min_pair_distance"] > 0.0
