"""The pre-fork fleet: shared port, supervision, coherent reloads.

Process-level integration tests for ``repro.diagnosis.fleet``: a
killed worker is restarted without the shared port ever refusing
service, a graceful stop drains in-flight keep-alive requests with
zero 5xx, and a fleet-wide hot-reload under multi-process client load
leaves every worker at the same version.
"""

import json
import multiprocessing
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.diagnosis.cli import parse_procs
from repro.diagnosis.fleet import (DiagnosisFleet, FleetError,
                                   _WorkerController,
                                   aggregate_metrics,
                                   reuseport_available)
from repro.diagnosis.registry import RegistryError
from repro.diagnosis.server import ApiError
from repro.faultsim import signature_feature_names

from .test_hot_reload import GENERATIONS, _generation

N = len(signature_feature_names())
PROCS = 2


def _request(address, path, body=None, timeout=20):
    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def fleet(tmp_path):
    path = tmp_path / "adc.json"
    _generation(GENERATIONS[1]).save(path)
    fleet = DiagnosisFleet([("adc", str(path))], procs=PROCS,
                           db_path=str(tmp_path / "results.db"))
    fleet.start()
    yield fleet, tmp_path
    fleet.stop(graceful=False)


def _wait_for_restart(fleet, dead_pid, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = fleet.worker_pids()
        if len(pids) == PROCS and dead_pid not in pids:
            return pids
        time.sleep(0.05)
    raise AssertionError(
        f"worker {dead_pid} was not replaced: {fleet.worker_pids()}")


class TestFleetServing:
    def test_all_workers_share_one_port(self, fleet):
        fleet, _ = fleet
        body = json.dumps({"queries": [[0.0] * N]}).encode()
        for _ in range(10):
            status, payload = _request(fleet.address,
                                       "/v1/diagnose", body)
            assert status == 200
            assert payload["dictionary"] == "adc"
        assert len(fleet.worker_pids()) == PROCS

    def test_metrics_aggregate_across_workers(self, fleet):
        fleet, _ = fleet
        body = json.dumps({"queries": [[0.0] * N]}).encode()
        for _ in range(6):
            _request(fleet.address, "/v1/diagnose", body)
        status, payload = _request(fleet.address, "/v1/metrics")
        assert status == 200
        block = payload["fleet"]
        assert block["procs"] == PROCS
        assert block["workers"] == PROCS
        assert len(block["per_worker"]) == PROCS
        # the sum over workers sees every request exactly once
        assert payload["requests"]["/v1/diagnose"] == 6
        assert payload["queries"] == 6
        assert payload["uptime"] >= 0.0


class TestCrashRestart:
    def test_killed_worker_is_replaced_port_kept(self, fleet):
        fleet, _ = fleet
        body = json.dumps({"queries": [[0.0] * N]}).encode()
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)

        # the shared port keeps answering throughout: the surviving
        # worker holds it while the supervisor restarts the dead
        # one.  A connection the kernel had routed to the killed
        # worker's socket at the instant of death gets a transient
        # RST — that's SO_REUSEPORT semantics, not the service — so
        # connection-level errors are retried, but any served
        # request must succeed.
        served = 0
        resets = 0
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                status, _payload = _request(fleet.address,
                                            "/v1/diagnose", body)
            except (urllib.error.URLError, ConnectionError,
                    OSError):
                resets += 1
                time.sleep(0.05)
                continue
            assert status == 200
            served += 1
            if len(fleet.worker_pids()) == PROCS and \
                    victim not in fleet.worker_pids():
                break
            time.sleep(0.05)
        pids = _wait_for_restart(fleet, victim)
        assert served > 0
        assert victim not in pids
        # and the replacement serves too
        status, _payload = _request(fleet.address,
                                    "/v1/diagnose", body)
        assert status == 200

    def test_restarted_worker_replays_reload_history(self, fleet):
        fleet, tmp_path = fleet
        next_path = tmp_path / "adc-v2.json"
        _generation(GENERATIONS[2]).save(next_path)
        status, payload = _request(
            fleet.address, "/v1/dictionaries/adc/reload",
            json.dumps({"path": str(next_path)}).encode())
        assert status == 200
        assert payload["version"] == 2
        assert fleet.versions("adc") == [2] * PROCS

        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        _wait_for_restart(fleet, victim)
        # the replacement rejoined at the fleet's version, not v1
        assert fleet.versions("adc") == [2] * PROCS


class TestGracefulDrain:
    def test_stop_drains_in_flight_requests_zero_5xx(self, fleet):
        fleet, _ = fleet
        body = json.dumps({"queries": [[0.0] * N]}).encode()
        stop = threading.Event()
        failures = []
        completed = [0] * 4

        def client(i):
            while not stop.is_set():
                try:
                    status, payload = _request(
                        fleet.address, "/v1/diagnose", body)
                except (urllib.error.URLError, ConnectionError,
                        OSError):
                    # the port going away after the drain is the
                    # expected end of service, not a failure
                    return
                if status >= 500:
                    failures.append((status, payload))
                else:
                    completed[i] += 1

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while sum(completed) < 20 and time.monotonic() < deadline:
            time.sleep(0.01)
        fleet.stop(graceful=True)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert sum(completed) >= 20
        assert not failures, failures[:5]
        # every worker exited after the drain — none were killed
        assert fleet.worker_pids() == []

    def test_sigterm_drains_one_worker_then_restarts(self, fleet):
        fleet, _ = fleet
        victim = fleet.worker_pids()[0]
        os.kill(victim, signal.SIGTERM)
        pids = _wait_for_restart(fleet, victim)
        assert victim not in pids
        body = json.dumps({"queries": [[0.0] * N]}).encode()
        status, _payload = _request(fleet.address,
                                    "/v1/diagnose", body)
        assert status == 200


class TestFleetHotReload:
    def test_reload_under_load_is_coherent(self, fleet):
        """The multi-process version of the hot-reload hammer: 8
        clients against a 2-worker fleet while the dictionary behind
        them is reloaded fleet-wide N times.  Zero failed requests,
        no torn generations, and a final version every worker
        agrees on."""
        fleet, tmp_path = fleet
        n_reloads = 4
        for generation in range(2, n_reloads + 2):
            path = tmp_path / f"adc-gen{generation}.json"
            _generation(GENERATIONS[generation]).save(path)

        body = json.dumps(
            {"queries": [[0.0] * N, [0.0] * N]}).encode()
        stop = threading.Event()
        failures = []
        requests_done = [0] * 8

        def client(i):
            while not stop.is_set():
                status, payload = _request(fleet.address,
                                           "/v1/diagnose", body)
                if status != 200:
                    failures.append((status, payload))
                    continue
                version = payload["version"]
                expected = GENERATIONS.get(version)
                if expected is None:
                    failures.append(("unknown version", payload))
                elif len(payload["diagnoses"]) != 2:
                    failures.append(("wrong count", payload))
                requests_done[i] += 1

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        try:
            for generation in range(2, n_reloads + 2):
                baseline = sum(requests_done)
                for _ in range(1000):
                    if sum(requests_done) >= baseline + 8:
                        break
                    time.sleep(0.01)
                path = tmp_path / f"adc-gen{generation}.json"
                status, payload = _request(
                    fleet.address, "/v1/dictionaries/adc/reload",
                    json.dumps({"path": str(path)}).encode())
                assert status == 200, payload
                assert payload["version"] == generation
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)

        assert not failures, failures[:5]
        assert sum(requests_done) > 0
        # coherence: every worker settled on the final version
        final = n_reloads + 1
        assert fleet.versions("adc") == [final] * PROCS
        status, payload = _request(fleet.address,
                                   "/v1/diagnose", body)
        assert payload["version"] == final

    def test_failed_reload_leaves_fleet_untouched(self, fleet):
        fleet, tmp_path = fleet
        bad = tmp_path / "torn.json"
        bad.write_text("{ not json")
        status, payload = _request(
            fleet.address, "/v1/dictionaries/adc/reload",
            json.dumps({"path": str(bad)}).encode())
        assert status == 409
        assert payload["error"]["code"] == "reload_failed"
        assert fleet.versions("adc") == [1] * PROCS

    def test_unknown_dictionary_reload_404(self, fleet):
        fleet, _ = fleet
        status, payload = _request(
            fleet.address, "/v1/dictionaries/absent/reload",
            json.dumps({}).encode())
        assert status == 404
        assert payload["error"]["code"] == "unknown_dictionary"


class TestControlChannelIntegrity:
    def test_late_reply_is_discarded_not_misdelivered(self):
        """Regression: a forwarded call that times out must not
        leave its late reply in the pipe to be delivered as the
        answer to the *next* call (permanent off-by-one — a reload
        returning a metrics payload)."""
        supervisor_end, worker_end = multiprocessing.Pipe()
        controller = _WorkerController(worker_end, timeout=0.2)

        # the supervisor never answers the first call in time
        with pytest.raises(ApiError):
            controller.metrics()
        first = supervisor_end.recv()
        # ... but its reply lands later, ahead of the next exchange
        supervisor_end.send({"ok": True, "id": first["id"],
                             "payload": {"which": "first"}})

        def answer_second():
            second = supervisor_end.recv()
            supervisor_end.send({"ok": True, "id": second["id"],
                                 "payload": {"which": "second"}})

        t = threading.Thread(target=answer_second, daemon=True)
        t.start()
        assert controller.metrics() == {"which": "second"}
        t.join(timeout=5)

    def test_workers_exit_when_supervisor_ends_close(self, fleet):
        """Regression: forked workers inherit each other's
        supervisor-side pipe ends; unless each child closes the
        copies, EOF never fires and a SIGKILLed supervisor leaves
        the whole fleet running orphaned on the port."""
        fleet, _ = fleet
        # stop the monitor so dead workers are not restarted
        fleet._stopping.set()
        fleet._monitor.join(timeout=10)
        with fleet._workers_lock:
            workers = list(fleet._workers)
        # emulate supervisor death: drop every supervisor-side end
        for worker in workers:
            worker.close()
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if all(not w.process.is_alive() for w in workers):
                break
            time.sleep(0.05)
        alive = [w.pid for w in workers if w.process.is_alive()]
        assert not alive, (
            f"workers {alive} survived the control channel closing "
            f"— they must hold only their own pipe ends")


class TestFleetConstruction:
    def test_rejects_zero_procs(self):
        with pytest.raises(FleetError):
            DiagnosisFleet([("adc", "x.json")], procs=0)

    def test_rejects_empty_dictionaries(self):
        with pytest.raises(FleetError):
            DiagnosisFleet([], procs=2)

    def test_rejects_unknown_default(self):
        with pytest.raises(RegistryError):
            DiagnosisFleet([("adc", "x.json")], procs=2,
                           default="dac")

    def test_accepts_cli_spec_strings(self):
        fleet = DiagnosisFleet(["adc=/tmp/x.json"], procs=2)
        assert fleet.specs == [("adc", "/tmp/x.json")]
        assert fleet.default == "adc"

    def test_reuseport_probe_is_a_bool(self):
        assert isinstance(reuseport_available(), bool)


class TestParseProcs:
    def test_integer(self):
        assert parse_procs("3") == 3

    def test_auto_is_cpu_count(self):
        assert parse_procs("auto") == (os.cpu_count() or 1)

    def test_rejects_garbage_and_nonpositive(self):
        for bad in ("zero", "", "0", "-2"):
            with pytest.raises(RegistryError):
                parse_procs(bad)


class TestAggregateMetrics:
    def test_counters_sum_watermarks_max(self):
        a = {"queries": 3, "responses": {"200": 3},
             "batching": {"adc": {"max_block": 5, "version": 2,
                                  "batches": 2}},
             "uptime": 10.0}
        b = {"queries": 4, "responses": {"200": 3, "404": 1},
             "batching": {"adc": {"max_block": 9, "version": 2,
                                  "batches": 1}},
             "uptime": 99.0}
        out = aggregate_metrics([a, b])
        assert out["queries"] == 7
        assert out["responses"] == {"200": 6, "404": 1}
        assert out["batching"]["adc"]["max_block"] == 9
        assert out["batching"]["adc"]["version"] == 2
        assert out["batching"]["adc"]["batches"] == 3
        # per-process observation, not a counter: never summed
        assert out["uptime"] == 10.0

    def test_wall_sums_and_rates_recomputed(self):
        """Regression: cumulative wall time sums across workers and
        rate fields are recomputed from the summed counters — not
        one worker's local rate next to fleet-summed counts."""
        a = {"queries": 100, "wall_time": 1.0,
             "queries_per_second": 100.0,
             "matched": 60, "ambiguous": 20, "unmatched": 20,
             "ambiguity_rate": 0.2}
        b = {"queries": 300, "wall_time": 3.0,
             "queries_per_second": 100.0,
             "matched": 100, "ambiguous": 100, "unmatched": 100,
             "ambiguity_rate": 1.0 / 3.0}
        out = aggregate_metrics([a, b])
        assert out["wall_time"] == pytest.approx(4.0)
        assert out["queries"] == 400
        # consistent by construction: counts / wall == rate
        assert out["queries_per_second"] == pytest.approx(400 / 4.0)
        assert out["ambiguity_rate"] == pytest.approx(120 / 400)

    def test_shared_db_block_not_multiplied(self):
        a = {"queries": 1, "db": {"queries": 50, "batches": 5}}
        b = {"queries": 1, "db": {"queries": 50, "batches": 5}}
        out = aggregate_metrics([a, b])
        assert out["db"] == {"queries": 50, "batches": 5}

    def test_empty_input(self):
        assert aggregate_metrics([]) == {}
