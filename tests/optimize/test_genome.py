"""PlanGenome validation, identity keys and PathConfig compilation."""

import pytest

from repro.adc.process import corner_set
from repro.core.path import PathConfig
from repro.optimize import MISSING_CODE, PlanGenome, all_measurements

IVDD_S = ("ivdd", "sampling", "above")
IDDQ_L = ("iddq", "latching", "below")


class TestValidation:
    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            PlanGenome(schedule=())

    def test_unknown_measurement_rejected(self):
        with pytest.raises(ValueError, match="unknown measurement"):
            PlanGenome(schedule=(("bogus", "x", "y"),))

    def test_duplicate_measurement_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PlanGenome(schedule=(IVDD_S, IVDD_S))

    def test_unknown_corner_set_rejected(self):
        with pytest.raises(ValueError, match="corner"):
            PlanGenome(corners="nominal", schedule=(MISSING_CODE,))

    def test_universe_size(self):
        # the missing-code pseudo-measurement + 4 quantities x 3
        # phases x 2 polarities of current measurements
        assert len(all_measurements()) == 25
        assert all_measurements()[0] == MISSING_CODE


class TestIdentity:
    def test_schedule_changes_key_not_campaign_key(self):
        a = PlanGenome(schedule=(MISSING_CODE, IVDD_S))
        b = PlanGenome(schedule=(IVDD_S, MISSING_CODE))
        assert a.key() != b.key()
        assert a.campaign_key() == b.campaign_key()

    def test_campaign_gene_changes_both_keys(self):
        a = PlanGenome(schedule=(MISSING_CODE,))
        b = PlanGenome(flipflop_redesign=True,
                       schedule=(MISSING_CODE,))
        assert a.key() != b.key()
        assert a.campaign_key() != b.campaign_key()

    def test_roundtrip(self):
        g = PlanGenome(bias_line_reorder=True, dynamic_test=True,
                       big_probe=0.05, corners="typical",
                       schedule=(IDDQ_L, MISSING_CODE))
        back = PlanGenome.from_dict(g.to_dict())
        assert back == g
        assert back.key() == g.key()


class TestCompilation:
    def test_default_genes_leave_base_config_alone(self):
        """A default-gene genome must share store keys with plain
        campaigns: the compiled config equals the base config."""
        base = PathConfig(n_defects=500, max_classes=4, seed=3)
        compiled = PlanGenome(schedule=(MISSING_CODE,)) \
            .path_config(base)
        assert compiled == base

    def test_deltas_applied(self):
        base = PathConfig(n_defects=500)
        g = PlanGenome(flipflop_redesign=True, dynamic_test=True,
                       big_probe=0.2, small_probe=4e-3,
                       corners="typical", schedule=(MISSING_CODE,))
        compiled = g.path_config(base)
        assert compiled.dft.flipflop_redesign
        assert not compiled.dft.bias_line_reorder
        assert compiled.dynamic_test
        assert compiled.big_probe == 0.2
        assert compiled.small_probe == 4e-3
        assert compiled.corners == tuple(corner_set("typical"))
        # untouched knobs survive
        assert compiled.n_defects == 500
