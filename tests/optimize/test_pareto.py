"""NSGA-II primitive tests: sorting, crowding, selection, hypervolume."""

import numpy as np
import pytest

from repro.optimize import (crowding_distance, dominates, hypervolume,
                            non_dominated_sort, nsga_rank, nsga_select)

# hand-built minimization points:
#   0 (0,3) | 1 (3,0) | 4 (1,1)  -> Pareto front
#   2 (2,2)                      -> dominated only by 4
#   3 (4,4)                      -> dominated by everything
POINTS = [(0.0, 3.0), (3.0, 0.0), (2.0, 2.0), (4.0, 4.0), (1.0, 1.0)]


class TestDominates:
    def test_strict(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_partial_tie(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))

    def test_incomparable(self):
        assert not dominates((0.0, 3.0), (3.0, 0.0))
        assert not dominates((3.0, 0.0), (0.0, 3.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))


class TestNonDominatedSort:
    def test_hand_built_fronts(self):
        assert non_dominated_sort(POINTS) == [[0, 1, 4], [2], [3]]

    def test_empty(self):
        assert non_dominated_sort([]) == []

    def test_all_identical_single_front(self):
        fronts = non_dominated_sort([(1.0, 1.0)] * 4)
        assert fronts == [[0, 1, 2, 3]]

    def test_indices_ascending_within_front(self):
        for front in non_dominated_sort(POINTS):
            assert front == sorted(front)


class TestCrowdingDistance:
    def test_boundaries_infinite(self):
        front = [0, 1, 4]
        d = crowding_distance(POINTS, front)
        # 0 and 1 are the extremes of both objectives; 4 is interior
        assert np.isinf(d[0]) and np.isinf(d[1])
        assert np.isfinite(d[2])

    def test_small_front_all_infinite(self):
        assert np.all(np.isinf(crowding_distance(POINTS, [0, 1])))

    def test_empty_front(self):
        assert crowding_distance(POINTS, []).shape == (0,)

    def test_tied_values_deterministic(self):
        """Exact objective ties: the stable sort must hand the inf
        boundary to the lower index, every run."""
        pts = [(0.0, 2.0), (0.0, 2.0), (0.0, 2.0), (1.0, 0.0)]
        front = [0, 1, 2, 3]
        d1 = crowding_distance(pts, front)
        d2 = crowding_distance(pts, front)
        assert np.array_equal(d1, d2)
        # index 0 gets the boundary inf among the tied trio
        assert np.isinf(d1[0])

    def test_zero_range_objective_ignored(self):
        """An objective where the whole front ties contributes
        nothing (no divide-by-zero, no NaN)."""
        pts = [(5.0, 0.0), (5.0, 1.0), (5.0, 2.0), (5.0, 3.0)]
        d = crowding_distance(pts, [0, 1, 2, 3])
        assert np.all(np.isfinite(d[1:3]))
        assert not np.any(np.isnan(d))


class TestSelection:
    def test_rank_matches_fronts(self):
        ranks, _ = nsga_rank(POINTS)
        assert list(ranks) == [0, 0, 1, 2, 0]

    def test_select_prefers_lower_fronts(self):
        assert nsga_select(POINTS, 3) == [0, 1, 4]

    def test_select_truncates_by_crowding(self):
        # 4 is the interior (finite-crowding) front member: first out
        assert nsga_select(POINTS, 2) == [0, 1]

    def test_select_everything_when_k_large(self):
        assert nsga_select(POINTS, 99) == [0, 1, 2, 3, 4]

    def test_select_is_sorted_and_deterministic(self):
        for k in range(1, 5):
            sel = nsga_select(POINTS, k)
            assert sel == sorted(sel)
            assert sel == nsga_select(POINTS, k)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(0.0, 0.0)], (1.0, 1.0)) == \
            pytest.approx(1.0)

    def test_two_point_front(self):
        # sweep: [0, .8) dominated height .1, [.8, 1) height 1
        hv = hypervolume([(0.0, 0.9), (0.8, 0.0)], (1.0, 1.0))
        assert hv == pytest.approx(0.8 * 0.1 + 0.2 * 1.0)

    def test_dominated_point_adds_nothing(self):
        lone = hypervolume([(0.2, 0.2)], (1.0, 1.0))
        both = hypervolume([(0.2, 0.2), (0.5, 0.5)], (1.0, 1.0))
        assert both == pytest.approx(lone)

    def test_point_outside_reference_ignored(self):
        assert hypervolume([(2.0, 2.0)], (1.0, 1.0)) == 0.0

    def test_empty(self):
        assert hypervolume([], (1.0, 1.0)) == 0.0

    def test_result_is_plain_float(self):
        """The journal JSON-serialises this — numpy scalars would
        crash json.dumps."""
        hv = hypervolume(np.array([[0.0, 0.0]]), np.array([1.0, 1.0]))
        assert type(hv) is float

    def test_three_dimensional(self):
        hv = hypervolume([(0.0, 0.0, 0.5), (0.5, 0.5, 0.0)],
                         (1.0, 1.0, 1.0))
        # box1 = 1*1*.5, box2 = .5*.5*1, overlap = .5*.5*.5
        assert hv == pytest.approx(0.5 + 0.25 - 0.125)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            hypervolume([(0.0, 0.0)], (1.0, 1.0, 1.0))
