"""Search-loop tests with a stub evaluator: same-seed byte-identical
fronts, journaling, mid-generation crash resume."""

import pytest

from repro.campaign import CampaignOptions, EventBus
from repro.optimize import (MISSING_CODE, CandidateEvaluation,
                            EvolutionarySearch, ObjectiveVector,
                            OptimizeMetricsCollector, PlanGenome,
                            SearchConfig, all_measurements,
                            measurement_cost)

IVDD_S = ("ivdd", "sampling", "above")
IDDQ_L = ("iddq", "latching", "below")
IIN_A = ("iin", "amplification", "above")

SEEDS = [
    PlanGenome(schedule=(MISSING_CODE,)),
    PlanGenome(schedule=(IVDD_S, MISSING_CODE)),
    PlanGenome(flipflop_redesign=True,
               schedule=(MISSING_CODE, IDDQ_L)),
    PlanGenome(schedule=(IIN_A,)),
]


class StubEvaluator:
    """Scores genomes analytically — a pure function of the genome, so
    journal adoption reproduces exactly what scoring would compute."""

    def __init__(self, bus=None, fail_after=None):
        self.bus = bus or EventBus()
        self.calls = 0
        self.fail_after = fail_after

    def evaluate(self, genome, generation=0):
        from repro.campaign import CandidateEvaluated
        self.calls += 1
        if self.fail_after is not None and \
                self.calls > self.fail_after:
            raise RuntimeError("simulated crash")
        n = len(genome.schedule)
        coverage = min(1.0, 0.15 * n +
                       (0.1 if genome.flipflop_redesign else 0.0) +
                       (0.05 if genome.dynamic_test else 0.0))
        time = sum(measurement_cost(m) for m in genome.schedule)
        area = (40000.0 if genome.flipflop_redesign else 0.0) + \
            (20000.0 if genome.bias_line_reorder else 0.0)
        resolution = min(1.0, 0.1 + 0.03 * n)
        evaluation = CandidateEvaluation(
            genome=genome,
            objectives=ObjectiveVector(coverage, time, area,
                                       resolution),
            source="computed", fresh_simulations=1, store_hits=0)
        self.bus.emit(CandidateEvaluated(
            generation=generation, key=genome.key(),
            source="computed", fresh_simulations=1,
            objectives=evaluation.objectives.to_dict()))
        return evaluation


def run_search(tmp_path=None, seed=7, generations=3, population=8,
               fail_after=None, resume=False, bus=None):
    options = CampaignOptions(
        cache_dir=None if tmp_path is None else tmp_path)
    search = EvolutionarySearch(
        search=SearchConfig(population=population,
                            generations=generations, seed=seed),
        options=options,
        evaluator=StubEvaluator(bus=bus, fail_after=fail_after),
        seed_genomes=SEEDS, bus=bus)
    return search, search.run(resume=resume)


class TestDeterminism:
    def test_same_seed_byte_identical_fronts(self):
        _, a = run_search(seed=11)
        _, b = run_search(seed=11)
        assert a.front_json() == b.front_json()
        assert [e.genome.key() for e in a.population] == \
            [e.genome.key() for e in b.population]

    def test_different_seed_diverges(self):
        _, a = run_search(seed=11)
        _, b = run_search(seed=12)
        # populations explore different genomes (fronts could
        # coincide at tiny sizes, the populations must not)
        assert [e.genome.key() for e in a.population] != \
            [e.genome.key() for e in b.population]

    def test_front_is_mutually_non_dominated(self):
        from repro.optimize import dominates
        _, result = run_search(seed=3)
        pts = [e.objectives.minimize() for e in result.front]
        for i, p in enumerate(pts):
            for j, q in enumerate(pts):
                if i != j:
                    assert not dominates(p, q)

    def test_generation_count(self):
        _, result = run_search(generations=3)
        assert len(result.generations) == 4  # gen 0 + 3 breeding
        assert [g["generation"] for g in result.generations] == \
            [0, 1, 2, 3]


class TestJournal:
    def test_journaled_equals_memoryless(self, tmp_path):
        _, plain = run_search()
        _, journaled = run_search(tmp_path=tmp_path)
        assert plain.front_json() == journaled.front_json()

    def test_finished_run_replays_without_scoring(self, tmp_path):
        _, first = run_search(tmp_path=tmp_path)
        search, replay = run_search(tmp_path=tmp_path, resume=True)
        assert replay.front_json() == first.front_json()
        assert search.evaluator.calls == 0

    def test_resume_refuses_changed_identity(self, tmp_path):
        run_search(tmp_path=tmp_path, seed=7)
        options = CampaignOptions(cache_dir=tmp_path)
        other = EvolutionarySearch(
            search=SearchConfig(population=8, generations=3, seed=8,
                                run_id=EvolutionarySearch(
                                    search=SearchConfig(
                                        population=8, generations=3,
                                        seed=7),
                                    options=options,
                                    evaluator=StubEvaluator(),
                                    seed_genomes=SEEDS).run_id()),
            options=options, evaluator=StubEvaluator(),
            seed_genomes=SEEDS)
        with pytest.raises(ValueError, match="identity"):
            other.run(resume=True)


class TestCrashResume:
    def test_mid_generation_crash_resumes_to_identical_front(
            self, tmp_path):
        # uninterrupted reference
        _, reference = run_search(seed=21)
        # crash partway through a warm generation...
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_search(tmp_path=tmp_path, seed=21, fail_after=13)
        # ...and resume: identical front, and the journaled
        # evaluations were adopted instead of re-scored
        search, resumed = run_search(tmp_path=tmp_path, seed=21,
                                     resume=True)
        assert resumed.front_json() == reference.front_json()
        assert search.evaluator.calls < sum(
            g["evaluated"] for g in reference.generations)

    def test_crash_in_generation_zero(self, tmp_path):
        with pytest.raises(RuntimeError):
            run_search(tmp_path=tmp_path, seed=5, fail_after=3)
        search, resumed = run_search(tmp_path=tmp_path, seed=5,
                                     resume=True)
        _, reference = run_search(seed=5)
        assert resumed.front_json() == reference.front_json()
        assert search.evaluator.calls < sum(
            g["evaluated"] for g in reference.generations)


class TestMetrics:
    def test_collector_folds_events(self, tmp_path):
        bus = EventBus()
        collector = OptimizeMetricsCollector()
        bus.subscribe(collector)
        _, result = run_search(tmp_path=tmp_path, bus=bus)
        metrics = collector.snapshot()
        assert metrics.candidates == sum(
            g["evaluated"] for g in result.generations)
        assert len(metrics.generations) == len(result.generations)
        assert metrics.hypervolume_trajectory == tuple(
            g["hypervolume"] for g in result.generations)
        # within one journaled run, a re-bred duplicate genome is
        # adopted from the journal rather than re-scored
        payload = metrics.as_dict()
        assert payload["computed"] + payload["journal_hits"] == \
            metrics.candidates
        assert payload["computed"] > 0

    def test_journal_hits_counted_on_replay(self, tmp_path):
        run_search(tmp_path=tmp_path)
        bus = EventBus()
        collector = OptimizeMetricsCollector()
        bus.subscribe(collector)
        run_search(tmp_path=tmp_path, resume=True, bus=bus)
        metrics = collector.snapshot()
        assert metrics.computed == 0
        assert metrics.journal_hits == metrics.candidates > 0


class TestSeedPopulationShape:
    def test_population_size_and_uniqueness(self):
        from repro.optimize import generation_rng, seed_population
        from repro.optimize.operators import MutationRates
        pop = seed_population(SEEDS, 10, generation_rng(1, 0),
                              MutationRates())
        assert len(pop) == 10
        keys = [g.key() for g in pop]
        assert len(set(keys)) == len(keys)
        # the fixed menu leads the population
        assert pop[:len(SEEDS)] == SEEDS

    def test_universe_constant(self):
        assert len(all_measurements()) == 25
