"""Campaign-backed evaluation: objectives, memoization, store reuse.

One tiny comparator campaign (hundreds of defects, a handful of
classes) is shared by the whole module — evaluation itself is cheap,
the campaign is the only expensive part.
"""

import pytest

from repro.campaign import CampaignOptions
from repro.core.path import PathConfig
from repro.optimize import (MISSING_CODE, CampaignEvaluator,
                            ObjectiveVector, PlanGenome,
                            all_measurements, dft_area_overhead,
                            full_plan_cost, schedule_objectives)

IVDD_S = ("ivdd", "sampling", "above")

CONFIG = PathConfig(n_defects=600, max_classes=3,
                    include_noncat=False)


@pytest.fixture(scope="module")
def evaluator():
    return CampaignEvaluator(CONFIG, CampaignOptions(jobs=1))


class TestObjectives:
    def test_full_schedule(self, evaluator):
        e = evaluator.evaluate(PlanGenome(schedule=all_measurements()))
        o = e.objectives
        assert 0.0 < o.coverage <= 1.0
        assert 0.0 < o.test_time <= full_plan_cost()
        assert o.dft_area == 0.0
        assert 0.0 <= o.resolution <= 1.0
        assert e.source == "computed"
        assert e.fresh_simulations > 0
        assert e.fingerprint

    def test_schedule_variant_is_memo(self, evaluator):
        evaluator.evaluate(PlanGenome(schedule=all_measurements()))
        e = evaluator.evaluate(PlanGenome(schedule=(MISSING_CODE,)))
        assert e.source == "memo"
        assert e.fresh_simulations == 0
        assert e.store_hits == 0

    def test_shorter_schedule_cheaper(self, evaluator):
        full = evaluator.evaluate(
            PlanGenome(schedule=all_measurements()))
        short = evaluator.evaluate(PlanGenome(schedule=(MISSING_CODE,)))
        assert short.objectives.test_time < full.objectives.test_time
        assert short.objectives.coverage <= full.objectives.coverage

    def test_dft_area_follows_genes(self, evaluator):
        e = evaluator.evaluate(PlanGenome(
            flipflop_redesign=True, schedule=(MISSING_CODE,)))
        assert e.objectives.dft_area == \
            pytest.approx(dft_area_overhead(True, False))

    def test_deterministic_scores(self, evaluator):
        g = PlanGenome(schedule=(MISSING_CODE, IVDD_S))
        a = evaluator.evaluate(g).objectives
        b = evaluator.evaluate(g).objectives
        assert a == b


class TestStoreReuse:
    def test_warm_store_needs_no_fresh_simulation(self, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=tmp_path)
        g = PlanGenome(schedule=(MISSING_CODE,))
        cold = CampaignEvaluator(CONFIG, options).evaluate(g)
        warm = CampaignEvaluator(CONFIG, options).evaluate(g)
        assert cold.fresh_simulations > 0
        assert warm.fresh_simulations == 0
        assert warm.store_hits > 0
        assert warm.objectives == cold.objectives


class TestScheduleObjectives:
    TABLE = ((0.5, frozenset({MISSING_CODE})),
             (0.3, frozenset({IVDD_S})),
             (0.2, frozenset()))

    def test_coverage_sums_detected_weight(self):
        coverage, _ = schedule_objectives((MISSING_CODE, IVDD_S),
                                          self.TABLE)
        assert coverage == pytest.approx(0.8)

    def test_ordering_changes_expected_time(self):
        _, t1 = schedule_objectives((MISSING_CODE, IVDD_S),
                                    self.TABLE)
        _, t2 = schedule_objectives((IVDD_S, MISSING_CODE),
                                    self.TABLE)
        assert t1 != t2

    def test_zero_yield_loss_time_is_full_schedule(self):
        from repro.optimize import measurement_cost
        schedule = (MISSING_CODE, IVDD_S)
        _, t = schedule_objectives(schedule, self.TABLE,
                                   yield_loss=0.0)
        assert t == pytest.approx(sum(measurement_cost(m)
                                      for m in schedule))

    def test_minimize_negates_maximized_axes(self):
        o = ObjectiveVector(coverage=0.9, test_time=1e-3,
                            dft_area=5.0, resolution=0.4)
        assert o.minimize() == (-0.9, 1e-3, 5.0, -0.4)
