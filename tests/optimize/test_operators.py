"""Seeded operator determinism: mutation, crossover, tournament."""

import numpy as np
import pytest

from repro.optimize import (MISSING_CODE, MutationRates, PlanGenome,
                            all_measurements, crossover,
                            generation_rng, mutate, tournament)

IVDD_S = ("ivdd", "sampling", "above")
IDDQ_L = ("iddq", "latching", "below")
IIN_A = ("iin", "amplification", "above")

BASE = PlanGenome(schedule=(MISSING_CODE, IVDD_S, IDDQ_L))


class TestGenerationRng:
    def test_same_pair_same_stream(self):
        a = generation_rng(7, 3).random(8)
        b = generation_rng(7, 3).random(8)
        assert np.array_equal(a, b)

    def test_different_generation_different_stream(self):
        a = generation_rng(7, 3).random(8)
        b = generation_rng(7, 4).random(8)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = generation_rng(7, 3).random(8)
        b = generation_rng(8, 3).random(8)
        assert not np.array_equal(a, b)


class TestMutate:
    def test_seeded_determinism(self):
        outs = [mutate(BASE, generation_rng(11, g))
                for g in range(20)]
        again = [mutate(BASE, generation_rng(11, g))
                 for g in range(20)]
        assert outs == again
        # and the stream actually varies the genome
        assert any(o != BASE for o in outs)

    def test_always_valid(self):
        rng = generation_rng(5, 0)
        g = BASE
        for _ in range(300):
            g = mutate(g, rng)  # __post_init__ validates every step
            assert 1 <= len(g.schedule) <= len(all_measurements())

    def test_campaign_churn_is_rare(self):
        """Campaign genes mutate at ~the configured low rate — the
        warm-generation cache economy depends on it."""
        rng = generation_rng(23, 0)
        rates = MutationRates()
        moved = sum(
            mutate(BASE, rng, rates).campaign_key()
            != BASE.campaign_key()
            for _ in range(400))
        assert moved / 400 < 2 * rates.campaign

    def test_zero_rates_are_identity(self):
        rng = generation_rng(1, 0)
        rates = MutationRates(campaign=0.0, schedule_toggle=0.0,
                              schedule_swap=0.0)
        assert mutate(BASE, rng, rates) == BASE


class TestCrossover:
    A = PlanGenome(flipflop_redesign=True,
                   schedule=(MISSING_CODE, IVDD_S, IDDQ_L))
    B = PlanGenome(dynamic_test=True,
                   schedule=(IIN_A, IVDD_S))

    def test_seeded_determinism(self):
        kids = [crossover(self.A, self.B, generation_rng(3, g))
                for g in range(20)]
        again = [crossover(self.A, self.B, generation_rng(3, g))
                 for g in range(20)]
        assert kids == again

    def test_shared_measurements_always_inherited(self):
        for g in range(30):
            child = crossover(self.A, self.B, generation_rng(9, g))
            assert IVDD_S in child.schedule

    def test_relative_order_preserved(self):
        """Measurements inherited from one parent keep that parent's
        relative order."""
        for g in range(30):
            child = crossover(self.A, self.B, generation_rng(2, g))
            from_a = [m for m in child.schedule
                      if m in self.A.schedule]
            a_order = [m for m in self.A.schedule if m in from_a]
            assert from_a == a_order

    def test_genes_come_from_a_parent(self):
        for g in range(30):
            child = crossover(self.A, self.B, generation_rng(4, g))
            assert child.flipflop_redesign in (
                self.A.flipflop_redesign, self.B.flipflop_redesign)
            assert child.big_probe in (self.A.big_probe,
                                       self.B.big_probe)

    def test_never_empty_schedule(self):
        for g in range(50):
            child = crossover(self.A, self.B, generation_rng(6, g))
            assert len(child.schedule) >= 1


class TestTournament:
    def test_rank_wins(self):
        ranks = np.array([1, 0])
        crowding = np.array([0.0, 0.0])
        # whichever pair is drawn, index 1 (better rank) must win
        # whenever it participates; over many draws index 0 can only
        # appear when drawn against itself
        rng = generation_rng(1, 0)
        picks = [tournament(rng, ranks, crowding) for _ in range(100)]
        assert picks.count(1) > picks.count(0)

    def test_crowding_breaks_rank_ties(self):
        ranks = np.array([0, 0])
        crowding = np.array([5.0, 0.1])
        rng = generation_rng(2, 0)
        picks = [tournament(rng, ranks, crowding) for _ in range(100)]
        assert picks.count(0) > picks.count(1)

    def test_deterministic(self):
        ranks = np.array([0, 1, 0, 2])
        crowding = np.array([1.0, 2.0, np.inf, 0.0])
        a = [tournament(generation_rng(5, g), ranks, crowding)
             for g in range(30)]
        b = [tournament(generation_rng(5, g), ranks, crowding)
             for g in range(30)]
        assert a == b
