"""Tests for the content-addressed results store."""

import dataclasses
import json

import pytest

from repro.campaign.store import (ResultsStore, STORE_VERSION, canonical,
                                  content_key)
from repro.campaign.tasks import EngineSpec
from repro.defects.collapse import FaultClass
from repro.defects.faults import OpenFault, ShortFault
from repro.faultsim.signatures import CurrentMechanism, VoltageSignature
from repro.macrotest.coverage import DetectionRecord


def short_class(nets=("a", "b"), resistance=0.5, count=3) -> FaultClass:
    return FaultClass(
        representative=ShortFault(nets=frozenset(nets), layer="metal1",
                                  resistance=resistance),
        count=count)


def spec(**kwargs) -> EngineSpec:
    return EngineSpec(macro="ladder", ivdd_window_halfwidth=0.02,
                      **kwargs)


def record(count=3) -> DetectionRecord:
    return DetectionRecord(
        count=count, voltage_detected=True,
        mechanisms=frozenset({CurrentMechanism.IVDD}),
        voltage_signature=VoltageSignature.OFFSET,
        violated_keys=frozenset({("ivdd", "phi1", "above")}))


class TestCanonical:
    def test_frozenset_order_independent(self):
        a = canonical(frozenset({"vbn1", "gnd", "phi1"}))
        b = canonical(frozenset({"phi1", "vbn1", "gnd"}))
        assert a == b

    def test_dataclass_includes_type_and_fields(self):
        out = canonical(short_class().representative)
        assert out["__type__"] == "ShortFault"
        assert out["nets"] == ["a", "b"]

    def test_floats_roundtrip_bit_exact(self):
        assert canonical(0.1 + 0.2) == {"__float__": repr(0.1 + 0.2)}

    def test_json_serializable(self):
        json.dumps(canonical(spec()))

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestContentKey:
    def test_stable_for_identical_inputs(self):
        assert content_key(short_class(), spec()) == \
            content_key(short_class(), spec())

    def test_count_excluded_from_key(self):
        """A magnitude recount re-weights classes without changing
        their physics — it must not invalidate the cache."""
        assert content_key(short_class(count=3), spec()) == \
            content_key(short_class(count=999), spec())

    def test_fault_model_changes_key(self):
        assert content_key(short_class(resistance=0.5), spec()) != \
            content_key(short_class(resistance=5.0), spec())
        assert content_key(short_class(nets=("a", "b")), spec()) != \
            content_key(short_class(nets=("a", "c")), spec())

    def test_engine_config_changes_key(self):
        assert content_key(short_class(), spec()) != \
            content_key(short_class(),
                        spec(dynamic_test=True))
        assert content_key(short_class(), spec()) != \
            content_key(
                short_class(),
                dataclasses.replace(spec(),
                                    ivdd_window_halfwidth=0.03))
        assert content_key(short_class(), spec()) != \
            content_key(short_class(),
                        dataclasses.replace(spec(), macro="clockgen"))

    def test_version_tag_changes_key(self):
        assert content_key(short_class(), spec(), version="1") != \
            content_key(short_class(), spec(), version="2")

    def test_distinct_fault_shapes_distinct_keys(self):
        open_class = FaultClass(
            representative=OpenFault(
                net="a", layer="metal1", partition=frozenset(
                    {frozenset({"M1:0"}), frozenset({"M1:1"})})),
            count=1)
        assert content_key(open_class, spec()) != \
            content_key(short_class(), spec())


class TestResultsStore:
    def test_hit_on_identical_config(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.key(short_class(), spec())
        store.put(key, record())
        assert store.get(key) == record()
        assert store.hits == 1 and store.misses == 0

    def test_miss_when_absent(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.misses == 1

    def test_miss_on_engine_config_change(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put(store.key(short_class(), spec()), record())
        changed = dataclasses.replace(spec(),
                                      ivdd_window_halfwidth=0.05)
        assert store.get(store.key(short_class(), changed)) is None

    def test_miss_on_fault_model_change(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put(store.key(short_class(), spec()), record())
        other = short_class(resistance=7.5)
        assert store.get(store.key(other, spec())) is None

    def test_count_rehydrated_on_load(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.key(short_class(count=3), spec())
        store.put(key, record(count=3))
        loaded = store.get(key, count=42)
        assert loaded.count == 42
        assert loaded.voltage_detected

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.key(short_class(), spec())
        store.put(key, record())
        path = store._path(key)
        path.write_text("{ torn json")
        assert store.get(key) is None

    def test_len_counts_objects(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert len(store) == 0
        store.put(store.key(short_class(), spec()), record())
        assert len(store) == 1

    def test_version_bump_invalidates(self, tmp_path):
        old = ResultsStore(tmp_path, version=STORE_VERSION)
        old.put(old.key(short_class(), spec()), record())
        new = ResultsStore(tmp_path, version=STORE_VERSION + "-next")
        assert new.get(new.key(short_class(), spec())) is None


class TestConcurrentWriters:
    def test_parallel_puts_never_tear(self, tmp_path):
        """The multi-writer contract: many threads publishing to the
        same and different keys concurrently always leave every object
        readable and complete (unique temp stage + atomic replace)."""
        import threading

        store = ResultsStore(tmp_path)
        shared = store.key(short_class(), spec())
        errors = []

        def writer(k):
            try:
                own = store.key(short_class(nets=("a", f"w{k}")),
                                spec())
                for _ in range(25):
                    store.put(shared, record())
                    store.put(own, record(count=k + 1))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,))
                   for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.get(shared) == record()
        for k in range(6):
            own = store.key(short_class(nets=("a", f"w{k}")), spec())
            assert store.get(own, count=k + 1) is not None
        # no staging temp files left behind
        assert list(tmp_path.rglob("*.tmp")) == []


class TestSweepStaleTmp:
    def test_removes_only_stale_temps(self, tmp_path):
        import os
        import time

        from repro.campaign.store import sweep_stale_tmp

        store = ResultsStore(tmp_path)
        store.put(store.key(short_class(), spec()), record())
        objects = tmp_path / "objects"
        stale = objects / "dead-writer.json.tmp"
        fresh = objects / "live-writer.json.tmp"
        stale.write_text("{")
        fresh.write_text("{")
        old = time.time() - 3600.0
        os.utime(stale, (old, old))

        removed = sweep_stale_tmp(tmp_path, max_age=600.0)
        assert removed == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's stage is untouched
        # the published object is untouched
        assert store.get(store.key(short_class(), spec())) is not None

    def test_store_method_delegates(self, tmp_path):
        import os
        import time

        store = ResultsStore(tmp_path)
        leftover = tmp_path / "objects" / "x.json.tmp"
        leftover.parent.mkdir(parents=True, exist_ok=True)
        leftover.write_text("{")
        old = time.time() - 3600.0
        os.utime(leftover, (old, old))
        assert store.sweep_tmp(max_age=600.0) == 1

    def test_missing_root_is_noop(self, tmp_path):
        from repro.campaign.store import sweep_stale_tmp
        assert sweep_stale_tmp(tmp_path / "absent") == 0

    def test_skewed_mtime_survives_sweep(self, tmp_path):
        """Regression: a freshly-touched staging file whose mtime is
        skewed (NFS server clock ahead, or a backwards local clock
        step) must never be reaped mid-write.  The old sweep compared
        raw ``now - mtime`` so a backwards step could make a
        seconds-old file look older than the stale age."""
        import os
        import time

        from repro.campaign.store import sweep_stale_tmp

        objects = tmp_path / "objects"
        objects.mkdir(parents=True)
        now = time.time()

        # a live writer's stage whose mtime sits far in the future
        # (equivalently: our clock just stepped backwards past its
        # birth) — raw age is hugely negative, naive abs() or a
        # wrapped unsigned subtraction would call it ancient
        skewed = objects / "live-skewed.json.tmp"
        skewed.write_text("{")
        future = now + 7200.0
        os.utime(skewed, (future, future))

        # a stage just inside the future tolerance (small NFS skew)
        nearby = objects / "live-nearby.json.tmp"
        nearby.write_text("{")
        near_future = now + 5.0
        os.utime(nearby, (near_future, near_future))

        # a genuinely orphaned stage is still reaped
        stale = objects / "dead-writer.json.tmp"
        stale.write_text("{")
        old = now - 3600.0
        os.utime(stale, (old, old))

        removed = sweep_stale_tmp(tmp_path, max_age=600.0)
        assert removed == 1
        assert skewed.exists()
        assert nearby.exists()
        assert not stale.exists()


class TestJsonNamespace:
    """The generic JSON namespace (put_json/get_json/iter_keys) the
    optimizer's generation journal lives in."""

    def test_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put_json("optimize/run1/meta", {"seed": 7})
        assert store.get_json("optimize/run1/meta") == {"seed": 7}

    def test_missing_key_is_none(self, tmp_path):
        assert ResultsStore(tmp_path).get_json("absent/key") is None

    def test_corrupt_blob_is_miss_not_crash(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put_json("ns/torn", {"ok": True})
        path = tmp_path / "ns" / "torn.json"
        path.write_text("{not json", encoding="utf-8")
        assert store.get_json("ns/torn") is None

    def test_non_dict_payload_is_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = tmp_path / "ns" / "list.json"
        path.parent.mkdir(parents=True)
        path.write_text("[1, 2]", encoding="utf-8")
        assert store.get_json("ns/list") is None

    def test_overwrite(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put_json("k", {"v": 1})
        store.put_json("k", {"v": 2})
        assert store.get_json("k") == {"v": 2}

    def test_traversal_rejected(self, tmp_path):
        store = ResultsStore(tmp_path)
        for bad in ("../escape", "/abs/path", "a/../../b", ""):
            with pytest.raises(ValueError):
                store.put_json(bad, {})

    def test_dotted_keys_survive(self, tmp_path):
        """Keys containing dots must not be mangled by suffix
        handling."""
        store = ResultsStore(tmp_path)
        store.put_json("runs/v1.2/gen-00001", {"g": 1})
        assert store.get_json("runs/v1.2/gen-00001") == {"g": 1}
        assert "runs/v1.2/gen-00001" in store.iter_keys("runs/")

    def test_iter_keys_prefix_and_order(self, tmp_path):
        store = ResultsStore(tmp_path)
        for key in ("opt/b/gen-00002", "opt/a/meta", "opt/b/gen-00001",
                    "other/x"):
            store.put_json(key, {})
        assert list(store.iter_keys("opt/")) == \
            ["opt/a/meta", "opt/b/gen-00001", "opt/b/gen-00002"]
        assert list(store.iter_keys("opt/b/gen-")) == \
            ["opt/b/gen-00001", "opt/b/gen-00002"]

    def test_iter_keys_empty_store(self, tmp_path):
        assert list(ResultsStore(tmp_path).iter_keys()) == []
        assert list(ResultsStore(tmp_path / "absent").iter_keys()) == []
