"""Tests for the content-addressed results store."""

import dataclasses
import json

import pytest

from repro.campaign.store import (ResultsStore, STORE_VERSION, canonical,
                                  content_key)
from repro.campaign.tasks import EngineSpec
from repro.defects.collapse import FaultClass
from repro.defects.faults import OpenFault, ShortFault
from repro.faultsim.signatures import CurrentMechanism, VoltageSignature
from repro.macrotest.coverage import DetectionRecord


def short_class(nets=("a", "b"), resistance=0.5, count=3) -> FaultClass:
    return FaultClass(
        representative=ShortFault(nets=frozenset(nets), layer="metal1",
                                  resistance=resistance),
        count=count)


def spec(**kwargs) -> EngineSpec:
    return EngineSpec(macro="ladder", ivdd_window_halfwidth=0.02,
                      **kwargs)


def record(count=3) -> DetectionRecord:
    return DetectionRecord(
        count=count, voltage_detected=True,
        mechanisms=frozenset({CurrentMechanism.IVDD}),
        voltage_signature=VoltageSignature.OFFSET,
        violated_keys=frozenset({("ivdd", "phi1", "above")}))


class TestCanonical:
    def test_frozenset_order_independent(self):
        a = canonical(frozenset({"vbn1", "gnd", "phi1"}))
        b = canonical(frozenset({"phi1", "vbn1", "gnd"}))
        assert a == b

    def test_dataclass_includes_type_and_fields(self):
        out = canonical(short_class().representative)
        assert out["__type__"] == "ShortFault"
        assert out["nets"] == ["a", "b"]

    def test_floats_roundtrip_bit_exact(self):
        assert canonical(0.1 + 0.2) == {"__float__": repr(0.1 + 0.2)}

    def test_json_serializable(self):
        json.dumps(canonical(spec()))

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestContentKey:
    def test_stable_for_identical_inputs(self):
        assert content_key(short_class(), spec()) == \
            content_key(short_class(), spec())

    def test_count_excluded_from_key(self):
        """A magnitude recount re-weights classes without changing
        their physics — it must not invalidate the cache."""
        assert content_key(short_class(count=3), spec()) == \
            content_key(short_class(count=999), spec())

    def test_fault_model_changes_key(self):
        assert content_key(short_class(resistance=0.5), spec()) != \
            content_key(short_class(resistance=5.0), spec())
        assert content_key(short_class(nets=("a", "b")), spec()) != \
            content_key(short_class(nets=("a", "c")), spec())

    def test_engine_config_changes_key(self):
        assert content_key(short_class(), spec()) != \
            content_key(short_class(),
                        spec(dynamic_test=True))
        assert content_key(short_class(), spec()) != \
            content_key(
                short_class(),
                dataclasses.replace(spec(),
                                    ivdd_window_halfwidth=0.03))
        assert content_key(short_class(), spec()) != \
            content_key(short_class(),
                        dataclasses.replace(spec(), macro="clockgen"))

    def test_version_tag_changes_key(self):
        assert content_key(short_class(), spec(), version="1") != \
            content_key(short_class(), spec(), version="2")

    def test_distinct_fault_shapes_distinct_keys(self):
        open_class = FaultClass(
            representative=OpenFault(
                net="a", layer="metal1", partition=frozenset(
                    {frozenset({"M1:0"}), frozenset({"M1:1"})})),
            count=1)
        assert content_key(open_class, spec()) != \
            content_key(short_class(), spec())


class TestResultsStore:
    def test_hit_on_identical_config(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.key(short_class(), spec())
        store.put(key, record())
        assert store.get(key) == record()
        assert store.hits == 1 and store.misses == 0

    def test_miss_when_absent(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.misses == 1

    def test_miss_on_engine_config_change(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put(store.key(short_class(), spec()), record())
        changed = dataclasses.replace(spec(),
                                      ivdd_window_halfwidth=0.05)
        assert store.get(store.key(short_class(), changed)) is None

    def test_miss_on_fault_model_change(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.put(store.key(short_class(), spec()), record())
        other = short_class(resistance=7.5)
        assert store.get(store.key(other, spec())) is None

    def test_count_rehydrated_on_load(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.key(short_class(count=3), spec())
        store.put(key, record(count=3))
        loaded = store.get(key, count=42)
        assert loaded.count == 42
        assert loaded.voltage_detected

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = store.key(short_class(), spec())
        store.put(key, record())
        path = store._path(key)
        path.write_text("{ torn json")
        assert store.get(key) is None

    def test_len_counts_objects(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert len(store) == 0
        store.put(store.key(short_class(), spec()), record())
        assert len(store) == 1

    def test_version_bump_invalidates(self, tmp_path):
        old = ResultsStore(tmp_path, version=STORE_VERSION)
        old.put(old.key(short_class(), spec()), record())
        new = ResultsStore(tmp_path, version=STORE_VERSION + "-next")
        assert new.get(new.key(short_class(), spec())) is None
