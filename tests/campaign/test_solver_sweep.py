"""Dense-vs-sparse equivalence sweep over the macro engines.

The sparse backend is not bit-identical to the dense family (SuperLU
and LAPACK round differently), but every *verdict* the methodology
ships — the :class:`DetectionRecord` per fault class — is a
discretized comparison against the good-space windows and must come
out identical.  This sweep plans each analog macro twice, dense and
sparse, simulates the same fault classes through both backends and
asserts record equality; the digital decoder engine rounds out the
five macros (it performs no linear solves, which the sweep documents
structurally).

Also covers the solver knob's store-keying contract: the bit-identical
dense family shares content keys, sparse keys separately.
"""

import dataclasses

import pytest

from repro.campaign.plan import plan_macro
from repro.campaign.store import content_key
from repro.campaign.tasks import EngineSpec, simulate_class
from repro.circuit.backend import HAVE_SPARSE
from repro.core.path import PathConfig
from repro.defects import ShortFault
from repro.defects.collapse import FaultClass
from repro.faultsim.macro_engines import DecoderFaultEngine

needs_scipy = pytest.mark.skipif(not HAVE_SPARSE,
                                 reason="scipy not installed")

ANALOG_MACROS = ("comparator", "ladder", "clockgen", "biasgen")


def _config(solver: str) -> PathConfig:
    return PathConfig(n_defects=600, max_classes=2, seed=1995,
                      solver=solver)


@needs_scipy
@pytest.mark.parametrize("macro", ANALOG_MACROS)
def test_records_identical_dense_vs_sparse(macro):
    """Same plan, same classes, same verdicts — backend invisible."""
    plans = {solver: plan_macro(macro, _config(solver))
             for solver in ("dense", "sparse")}
    assert [c.representative for c in plans["dense"].classes] == \
        [c.representative for c in plans["sparse"].classes]
    assert plans["dense"].classes, "plan produced no classes"
    for dense_cls, sparse_cls in zip(plans["dense"].classes,
                                     plans["sparse"].classes):
        dense_record = simulate_class(dense_cls, plans["dense"].spec)
        sparse_record = simulate_class(sparse_cls,
                                       plans["sparse"].spec)
        assert dense_record == sparse_record, dense_cls.representative


def test_decoder_engine_is_solver_free():
    """The fifth macro is digital: no linear solves, no solver knob —
    its records cannot depend on the backend by construction."""
    fields = {f.name for f in dataclasses.fields(DecoderFaultEngine)}
    assert "solver" not in fields
    engine = DecoderFaultEngine(n_bridge_sample=5, n_stuck_sample=5,
                                seed=3)
    again = DecoderFaultEngine(n_bridge_sample=5, n_stuck_sample=5,
                               seed=3)
    assert engine.run() == again.run()


class TestSolverStoreKeys:
    def _class(self) -> FaultClass:
        fault = ShortFault(nets=frozenset({"lp", "ln"}),
                           layer="metal1", resistance=0.2)
        return FaultClass(representative=fault, count=2)

    def test_dense_family_shares_keys(self):
        """auto/dense/dense-batched are bit-identical — a cached
        record from any of them is valid for all of them."""
        fc = self._class()
        keys = {content_key(fc, EngineSpec(macro="comparator",
                                           solver=solver))
                for solver in ("auto", "dense", "dense-batched")}
        assert len(keys) == 1

    def test_sparse_keys_separately(self):
        fc = self._class()
        dense = content_key(fc, EngineSpec(macro="comparator",
                                           solver="dense"))
        sparse = content_key(fc, EngineSpec(macro="comparator",
                                            solver="sparse"))
        assert dense != sparse
