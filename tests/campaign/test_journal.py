"""Tests for the crash-safe campaign journal."""

from repro.campaign.journal import CampaignJournal, JournalEntry
from repro.faultsim.signatures import CurrentMechanism
from repro.macrotest.coverage import DetectionRecord


def record(count=2) -> DetectionRecord:
    return DetectionRecord(
        count=count, voltage_detected=False,
        mechanisms=frozenset({CurrentMechanism.IDDQ}),
        fault_type="open")


def entry(task_id="ladder:cat:0", **kwargs) -> JournalEntry:
    return JournalEntry(task_id=task_id, record=record(), **kwargs)


class TestJournalRoundtrip:
    def test_append_load(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        with journal:
            journal.open("fp1")
            journal.append(entry("ladder:cat:0"))
            journal.append(entry("ladder:cat:1", degraded=True,
                                 error="ConvergenceError: boom"))
        loaded = CampaignJournal(tmp_path / "j.jsonl").load("fp1")
        assert set(loaded) == {"ladder:cat:0", "ladder:cat:1"}
        assert loaded["ladder:cat:0"].record == record()
        assert loaded["ladder:cat:1"].degraded
        assert "ConvergenceError" in loaded["ladder:cat:1"].error

    def test_fingerprint_mismatch_yields_nothing(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        with journal:
            journal.open("fp1")
            journal.append(entry())
        assert CampaignJournal(tmp_path / "j.jsonl").load("fp2") == {}

    def test_no_fingerprint_check_loads_all(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        with journal:
            journal.open("fp1")
            journal.append(entry())
        assert len(CampaignJournal(tmp_path / "j.jsonl").load()) == 1

    def test_missing_file_loads_empty(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").load() == {}

    def test_fresh_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0"))
        with CampaignJournal(path) as journal:
            journal.open("fp1", fresh=True)
            journal.append(entry("a:cat:1"))
        assert set(CampaignJournal(path).load("fp1")) == {"a:cat:1"}


class TestCrashTolerance:
    def test_torn_tail_line_discarded(self, tmp_path):
        """A kill mid-append leaves a half-written last line; loading
        must keep every complete entry before it."""
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0"))
            journal.append(entry("a:cat:1"))
        text = path.read_text().splitlines()
        path.write_text("\n".join(text[:-1]) + "\n" + text[-1][:19])
        loaded = CampaignJournal(path).load("fp1")
        assert set(loaded) == {"a:cat:0"}

    def test_append_after_torn_tail_starts_clean_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0"))
        with open(path, "a") as handle:
            handle.write('{"task_id": "a:cat:1", "rec')  # torn append
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:2"))
        loaded = CampaignJournal(path).load("fp1")
        assert set(loaded) == {"a:cat:0", "a:cat:2"}

    def test_bad_version_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"journal_version": 999, "fingerprint": '
                        '"fp1"}\n')
        assert CampaignJournal(path).load("fp1") == {}


class TestCompact:
    def test_keeps_last_entry_per_task(self, tmp_path):
        """Superseded lines (a retried class re-appended) collapse to
        the final entry, first-seen task order preserved."""
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0", degraded=True,
                                 error="first attempt died"))
            journal.append(entry("a:cat:1"))
            journal.append(entry("a:cat:0"))  # retry succeeded
            dropped = journal.compact()
        assert dropped == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + 2 live entries
        loaded = CampaignJournal(path).load("fp1")
        assert set(loaded) == {"a:cat:0", "a:cat:1"}
        assert not loaded["a:cat:0"].degraded

    def test_resume_after_compaction(self, tmp_path):
        """The compacted journal still resumes: same fingerprint, all
        live entries adopted, and appends keep working on the reopened
        handle."""
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0"))
            journal.append(entry("a:cat:0"))
            journal.append(entry("a:cat:1"))
            assert journal.compact() == 1
            # the append handle survived the rewrite
            journal.append(entry("a:cat:2"))
        loaded = CampaignJournal(path).load("fp1")
        assert set(loaded) == {"a:cat:0", "a:cat:1", "a:cat:2"}

    def test_compact_drops_torn_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0"))
        with open(path, "a") as handle:
            handle.write('{"task_id": "a:cat:1", "rec')  # torn
        journal = CampaignJournal(path)
        assert journal.compact() == 1
        assert set(CampaignJournal(path).load("fp1")) == {"a:cat:0"}

    def test_compact_missing_file_is_noop(self, tmp_path):
        assert CampaignJournal(tmp_path / "absent.jsonl").compact() == 0

    def test_compact_bad_version_untouched(self, tmp_path):
        path = tmp_path / "j.jsonl"
        original = ('{"journal_version": 999, "fingerprint": "fp1"}\n'
                    '{"task_id": "a:cat:0"}\n')
        path.write_text(original)
        assert CampaignJournal(path).compact() == 0
        assert path.read_text() == original

    def test_already_compact_drops_nothing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.open("fp1")
            journal.append(entry("a:cat:0"))
            journal.append(entry("a:cat:1"))
            assert journal.compact() == 0
        assert set(CampaignJournal(path).load("fp1")) == \
            {"a:cat:0", "a:cat:1"}
