"""Tests for the distributed campaign fabric.

The end-to-end tests run a real coordinator HTTP server with thread
workers and the physics stubbed out (the `stub_simulation` pattern
from the runner tests); the failure-matrix tests drive the
coordinator's protocol operations directly with a fake clock, so
lease expiry and reclaim are deterministic and instant.
"""

import threading

import pytest

import repro.campaign.distributed.worker as worker_mod
import repro.campaign.tasks as tasks_mod
from repro.campaign import CampaignOptions, CampaignRunner, EventBus, \
    ShardReclaimed
from repro.campaign.distributed import (Coordinator, LocalWorkerPool,
                                        ProtocolError, ReportEntry,
                                        ShardLease, Worker, WorkerError)
from repro.diagnosis import dictionary_for_campaign
from repro.macrotest.coverage import DetectionRecord

from .test_runner import fake_record, tiny_config


@pytest.fixture
def stub_simulation(monkeypatch):
    calls = []

    def fake_simulate(fault_class, spec):
        calls.append((spec.macro,
                      fault_class.representative.collapse_key()))
        return fake_record(fault_class)

    monkeypatch.setattr(tasks_mod, "simulate_class", fake_simulate)
    return calls


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_coordinator(clock=None, lease=30.0, **kwargs):
    """Coordinator over the stubbed clockgen campaign.

    Pass a :class:`FakeClock` for deterministic lease expiry; the
    default (real monotonic time) suits end-to-end runs where nothing
    should ever expire.
    """
    import time as _time
    defaults = dict(macros=["clockgen"], shard_size=2, lease=lease,
                    clock=clock or _time.monotonic)
    defaults.update(kwargs)
    return Coordinator(tiny_config(), CampaignOptions(jobs=1),
                       **defaults)


def entries_for(coordinator, lease_dict):
    """Stub report entries for every task in one claimed shard."""
    tasks = coordinator._prepared.tasks_by_id
    return [ReportEntry(task_id=tid,
                        record=fake_record(tasks[tid].fault_class))
            for tid in lease_dict["task_ids"]]


class TestEndToEnd:
    def test_three_workers_match_single_host(self, stub_simulation):
        coordinator = make_coordinator(clock=None)
        distributed = coordinator.run(workers=3, worker_mode="thread",
                                      timeout=60)
        single = CampaignRunner(tiny_config(),
                                CampaignOptions(jobs=1)) \
            .run(["clockgen"])

        assert distributed.fingerprint == single.fingerprint
        a = distributed.path_result.macros["clockgen"]
        b = single.path_result.macros["clockgen"]
        assert a.result.records == b.result.records
        assert a.noncat_result.records == b.noncat_result.records

    def test_dashboard_aggregates_workers(self, stub_simulation):
        coordinator = make_coordinator(clock=None)
        coordinator.run(workers=2, worker_mode="thread", timeout=60)
        dashboard = coordinator.metrics()["distributed"]
        assert dashboard["shards_done"] == dashboard["shards_total"] > 0
        assert dashboard["reclaims"] == 0
        merged = sum(w["tasks"]
                     for w in dashboard["workers"].values())
        assert merged == coordinator.metrics()["campaign"]["completed"]

    def test_dictionary_matches_single_host(self, stub_simulation,
                                            tmp_path):
        options = CampaignOptions(jobs=1,
                                  cache_dir=tmp_path / "dist")
        coordinator = Coordinator(tiny_config(), options,
                                  macros=["clockgen"], shard_size=2)
        distributed = coordinator.run(workers=2, worker_mode="thread",
                                      timeout=60)
        single = CampaignRunner(
            tiny_config(),
            CampaignOptions(jobs=1, cache_dir=tmp_path / "single")) \
            .run(["clockgen"])

        dist_dict = dictionary_for_campaign(distributed)
        single_dict = dictionary_for_campaign(single)
        assert dist_dict.meta["fingerprint"] == \
            single_dict.meta["fingerprint"]
        assert dist_dict.entries == single_dict.entries

    def test_worker_timestamps_never_cross_the_wire(self,
                                                    stub_simulation,
                                                    monkeypatch):
        """The clock-skew contract: no protocol payload a worker sends
        carries any time-like field — leases live entirely on the
        coordinator's clock."""
        import time as _time
        sent = []
        real = worker_mod._http_json

        def spy(url, payload=None, **kwargs):
            if payload is not None:
                sent.append((url, payload))
            return real(url, payload, **kwargs)

        monkeypatch.setattr(worker_mod, "_http_json", spy)
        # slow the stub enough that heartbeats actually fire
        # (lease 0.9s -> heartbeat every 0.3s, ~0.2s per class)
        fast_stub = tasks_mod.simulate_class

        def slow_stub(fault_class, spec):
            _time.sleep(0.2)
            return fast_stub(fault_class, spec)

        monkeypatch.setattr(tasks_mod, "simulate_class", slow_stub)
        coordinator = make_coordinator(lease=0.9)
        coordinator.run(workers=2, worker_mode="thread", timeout=60)

        forbidden = {"time", "timestamp", "now", "clock", "deadline",
                     "expiry", "started", "claimed_at"}
        assert any("/heartbeat" in url for url, _ in sent)
        for url, payload in sent:
            keys = set(payload)
            for entry in payload.get("entries", ()):
                keys |= set(entry)
            assert not (keys & forbidden), (url, keys)

    @pytest.mark.slow
    def test_process_pool_smoke(self, tmp_path):
        """Spawned worker processes complete a real (tiny) campaign;
        marked slow with the other real-simulation tests."""
        config = tiny_config(n_defects=600, max_classes=2,
                             include_noncat=False)
        coordinator = Coordinator(
            config, CampaignOptions(jobs=1, cache_dir=tmp_path),
            macros=["clockgen"], shard_size=2)
        result = coordinator.run(workers=2, worker_mode="process",
                                 timeout=120)
        assert result.metrics.completed == result.metrics.total_tasks


class TestLeaseProtocol:
    def test_claim_leases_heaviest_first(self, stub_simulation):
        coordinator = make_coordinator()
        coordinator.prepare()
        first = coordinator.claim("w1")["shard"]
        second = coordinator.claim("w1")["shard"]
        assert first["weight"] >= second["weight"]
        assert first["index"] < second["index"]

    def test_expired_lease_reclaimed_for_other_worker(
            self, stub_simulation):
        clock = FakeClock()
        events = []
        # one shard holds the whole campaign, so the reclaim is
        # unambiguous about which shard comes back
        coordinator = make_coordinator(clock=clock, lease=30.0,
                                       shard_size=99)
        coordinator.bus.subscribe(
            lambda e: events.append(e)
            if isinstance(e, ShardReclaimed) else None)
        coordinator.prepare()

        lease = coordinator.claim("w1")["shard"]
        clock.advance(31.0)
        again = coordinator.claim("w2")["shard"]
        assert again["shard_id"] == lease["shard_id"]
        assert again["retries"] == 1
        assert [e.worker for e in events] == ["w1"]

    def test_heartbeat_extends_lease(self, stub_simulation):
        clock = FakeClock()
        coordinator = make_coordinator(clock=clock, lease=30.0)
        coordinator.prepare()
        lease = coordinator.claim("w1")["shard"]

        clock.advance(25.0)
        assert coordinator.heartbeat("w1",
                                     lease["shard_id"])["ok"]
        clock.advance(25.0)  # would be expired without the heartbeat
        other = coordinator.claim("w2")["shard"]
        assert other is None or \
            other["shard_id"] != lease["shard_id"]

    def test_heartbeat_after_reclaim_says_so(self, stub_simulation):
        clock = FakeClock()
        coordinator = make_coordinator(clock=clock, lease=30.0)
        coordinator.prepare()
        lease = coordinator.claim("w1")["shard"]
        clock.advance(31.0)
        answer = coordinator.heartbeat("w1", lease["shard_id"])
        assert not answer["ok"] and answer.get("reclaimed")

    def test_unknown_shard_is_protocol_error(self, stub_simulation):
        coordinator = make_coordinator()
        coordinator.prepare()
        with pytest.raises(ProtocolError):
            coordinator.heartbeat("w1", "nope")
        with pytest.raises(ProtocolError):
            coordinator.report("w1", "nope", [])


class TestReportMerge:
    def test_duplicate_report_is_idempotent(self, stub_simulation):
        coordinator = make_coordinator()
        coordinator.prepare()
        lease = coordinator.claim("w1")["shard"]
        entries = entries_for(coordinator, lease)

        first = coordinator.report("w1", lease["shard_id"], entries)
        before = dict(coordinator._results)
        second = coordinator.report("w2", lease["shard_id"], entries)

        assert first == {"accepted": True, "duplicate": False}
        assert second == {"accepted": True, "duplicate": True}
        assert coordinator._results == before
        snapshot = coordinator.distributed.snapshot()
        assert snapshot.duplicate_reports == 1
        assert snapshot.shards_done == 1

    def test_partial_report_requeues_shard(self, stub_simulation):
        coordinator = make_coordinator()
        coordinator.prepare()
        lease = coordinator.claim("w1")["shard"]
        entries = entries_for(coordinator, lease)[:-1]

        answer = coordinator.report("w1", lease["shard_id"], entries)
        assert not answer["accepted"]
        assert answer["missing"]
        # the shard is claimable again
        ids = set()
        while True:
            again = coordinator.claim("w2")["shard"]
            if again is None:
                break
            ids.add(again["shard_id"])
        assert lease["shard_id"] in ids

    def test_report_after_reclaim_still_merges(self, stub_simulation):
        """A worker that lost its lease but finished anyway delivers
        usable results — determinism makes them identical to whatever
        the replacement would compute."""
        clock = FakeClock()
        coordinator = make_coordinator(clock=clock, lease=30.0)
        coordinator.prepare()
        lease = coordinator.claim("w1")["shard"]
        clock.advance(31.0)
        coordinator.claim("w2")  # reclaim happens lazily here
        answer = coordinator.report("w1", lease["shard_id"],
                                    entries_for(coordinator, lease))
        assert answer["accepted"]
        for tid in lease["task_ids"]:
            assert tid in coordinator._results

    def test_max_retries_degrades_and_finishes(self, stub_simulation):
        clock = FakeClock()
        coordinator = make_coordinator(clock=clock, lease=10.0,
                                       max_shard_retries=1)
        coordinator.prepare()
        total_shards = len(coordinator._shards)

        for _ in range(2 + total_shards * 2):
            if coordinator._done.is_set():
                break
            coordinator.claim("w1")
            clock.advance(11.0)
        coordinator.claim("w1")  # final lazy reclaim pass
        assert coordinator._done.is_set()

        result = coordinator.wait(timeout=1.0)
        assert result.metrics.degraded == result.metrics.total_tasks
        records = result.path_result.macros["clockgen"].result.records
        assert all(not r.voltage_detected for r in records)


class TestCoordinatorRestart:
    def test_resume_from_merged_journal(self, stub_simulation,
                                        tmp_path):
        """Kill the coordinator after one merged shard; a restarted
        coordinator with --resume re-dispatches only the remainder and
        the final result still matches a single-host run."""
        options = CampaignOptions(jobs=1, cache_dir=tmp_path,
                                  resume=True)
        first = Coordinator(tiny_config(), options,
                            macros=["clockgen"], shard_size=2)
        first.prepare()
        lease = first.claim("w1")["shard"]
        first.report("w1", lease["shard_id"],
                     entries_for(first, lease))
        merged = set(first._results)
        first._journal.close()  # crash: server never assembled

        second = Coordinator(tiny_config(), options,
                             macros=["clockgen"], shard_size=2)
        second.prepare()
        # the merged classes came back from the journal, not as shards
        assert merged <= set(second._results)
        remaining = {tid for s in second._shards.values()
                     for tid in s.shard.task_ids}
        assert merged.isdisjoint(remaining)

        result = second.run(workers=2, worker_mode="thread",
                            timeout=60)
        single = CampaignRunner(tiny_config(),
                                CampaignOptions(jobs=1)) \
            .run(["clockgen"])
        assert result.fingerprint == single.fingerprint
        assert result.path_result.macros["clockgen"].result.records \
            == single.path_result.macros["clockgen"].result.records
        assert result.metrics.journal_hits == len(merged)


class TestWorkerClient:
    def test_fingerprint_mismatch_refuses_to_simulate(
            self, stub_simulation, monkeypatch):
        coordinator = make_coordinator(clock=None)
        url = coordinator.start()
        try:
            real = worker_mod._http_json

            def tampered(u, payload=None, **kwargs):
                answer = real(u, payload, **kwargs)
                if u.endswith("/campaign"):
                    answer["fingerprint"] = "f" * 64
                return answer

            monkeypatch.setattr(worker_mod, "_http_json", tampered)
            worker = Worker(url, worker_id="drifted")
            with pytest.raises(WorkerError,
                               match="fingerprint mismatch"):
                worker.run()
            assert stub_simulation == []  # refused before simulating
        finally:
            coordinator.stop()

    def test_bad_protocol_version_rejected(self, stub_simulation,
                                           monkeypatch):
        coordinator = make_coordinator(clock=None)
        url = coordinator.start()
        try:
            real = worker_mod._http_json

            def tampered(u, payload=None, **kwargs):
                answer = real(u, payload, **kwargs)
                if u.endswith("/campaign"):
                    answer["protocol"] = 999
                return answer

            monkeypatch.setattr(worker_mod, "_http_json", tampered)
            with pytest.raises(WorkerError,
                               match="protocol version"):
                Worker(url, worker_id="old").run()
        finally:
            coordinator.stop()

    def test_worker_shard_journal_recovers_partial_work(
            self, stub_simulation, tmp_path):
        """A worker killed mid-shard leaves a shard journal; its
        successor adopts the finished classes instead of re-simulating
        them."""
        coordinator = make_coordinator(clock=None)
        url = coordinator.start()
        try:
            crashed = Worker(url, worker_id="crashed",
                             cache_dir=tmp_path)
            crashed.join_campaign()
            lease_dict = crashed._claim()["shard"]
            lease = ShardLease.from_dict(lease_dict)
            # simulate the crash: execute the shard (journaling every
            # class) but die before reporting
            crashed.execute_shard(lease)
            n_simulated = len(stub_simulation)
            assert n_simulated == len(lease.task_ids)

            successor = Worker(url, worker_id="successor",
                               cache_dir=tmp_path)
            successor.join_campaign()
            entries = successor.execute_shard(lease)
            # adopted from the journal: no new simulations ran
            assert len(stub_simulation) == n_simulated
            assert {e.task_id for e in entries} == \
                set(lease.task_ids)
            answer = successor._report(lease, entries)
            assert answer["accepted"]
        finally:
            coordinator.stop()

    def test_worker_store_hits_reported_as_cache(self,
                                                 stub_simulation,
                                                 tmp_path):
        """Workers with a warm local store answer shards from cache
        and the coordinator books those classes as cache hits."""
        def run_once():
            coordinator = make_coordinator()  # no coordinator store
            url = coordinator.start()
            pool = LocalWorkerPool(url, 1, mode="thread",
                                   cache_dir=tmp_path)
            pool.start()
            try:
                return coordinator.wait(timeout=60)
            finally:
                pool.join(timeout=10.0)
                coordinator.stop()

        run_once()
        n_simulated = len(stub_simulation)
        result = run_once()
        assert len(stub_simulation) == n_simulated  # all store hits
        assert result.metrics.cache_hits == result.metrics.total_tasks

    def test_pool_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            LocalWorkerPool("http://127.0.0.1:1", 2, mode="carrier")
