"""Tests for the unified engine knobs: EngineSpec fields, the shared
CLI argument group, and their effect on the content-addressed store
key."""

import argparse

from repro.adc.process import corner_set, typical
from repro.campaign.store import content_key
from repro.campaign.tasks import EngineSpec, build_engine
from repro.core import add_engine_arguments, engine_knobs
from repro.defects import ShortFault
from repro.defects.collapse import FaultClass


def short_class():
    fault = ShortFault(nets=frozenset({"lp", "ln"}), layer="metal1",
                       resistance=0.2)
    return FaultClass(representative=fault, count=2)


class TestSpecKnobsKeyTheStore:
    def test_knob_changes_miss_cleanly(self):
        fc = short_class()
        base = EngineSpec(macro="comparator")
        keys = {content_key(fc, base)}
        for spec in (
                EngineSpec(macro="comparator", dt=2e-9),
                EngineSpec(macro="comparator", big_probe=0.2),
                EngineSpec(macro="comparator", small_probe=4e-3),
                EngineSpec(macro="comparator",
                           corners=tuple(corner_set("typical")))):
            keys.add(content_key(fc, spec))
        assert len(keys) == 5  # every knob participates in the key

    def test_same_spec_same_key(self):
        fc = short_class()
        assert content_key(fc, EngineSpec(macro="comparator")) == \
            content_key(fc, EngineSpec(macro="comparator"))


class TestBuildEnginePlumbing:
    def test_comparator_receives_knobs(self):
        spec = EngineSpec(macro="comparator", dt=2e-9, big_probe=0.25,
                          small_probe=5e-3,
                          corners=(typical(),))
        engine = build_engine(spec)
        assert engine.config.dt == 2e-9
        assert engine.config.big_probe == 0.25
        assert engine.config.small_probe == 5e-3
        assert engine._corners == [typical()]

    def test_clockgen_receives_dt(self):
        engine = build_engine(EngineSpec(macro="clockgen", dt=3e-9))
        assert engine.dt == 3e-9


class TestSharedArgumentGroup:
    def _parse(self, argv):
        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        return parser.parse_args(argv)

    def test_defaults_match_engine_config(self):
        from repro.faultsim import EngineConfig
        knobs = engine_knobs(self._parse([]))
        default = EngineConfig()
        assert knobs["dt"] == default.dt
        assert knobs["big_probe"] == default.big_probe
        assert knobs["small_probe"] == default.small_probe
        assert knobs["corners"] is None

    def test_overrides_flow_through(self):
        args = self._parse(["--dt", "2e-9", "--big-probe", "0.2",
                            "--small-probe", "4e-3",
                            "--corners", "typical"])
        knobs = engine_knobs(args)
        assert knobs["dt"] == 2e-9
        assert knobs["big_probe"] == 0.2
        assert knobs["small_probe"] == 4e-3
        assert knobs["corners"] == (typical(),)

    def test_corner_set_names(self):
        assert len(corner_set("reduced")) == 5
        assert len(corner_set("full")) == 27
        assert corner_set("typical") == [typical()]
