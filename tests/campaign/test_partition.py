"""Tests for the distributed work partitioner."""

from repro.campaign import CampaignOptions, CampaignRunner
from repro.campaign.distributed import partition_tasks, shard_id
from repro.campaign.distributed.partition import shards_by_id
from repro.campaign.plan import likelihood_order

from .test_runner import tiny_config


def planned_tasks(**kwargs):
    runner = CampaignRunner(tiny_config(**kwargs),
                            CampaignOptions(jobs=1))
    return runner.prepare(["clockgen"]).tasks


class TestPartitionDeterminism:
    def test_same_tasks_same_shards(self):
        tasks = planned_tasks()
        first = partition_tasks(tasks, shard_size=2)
        second = partition_tasks(list(tasks), shard_size=2)
        assert first == second

    def test_ids_are_content_keys(self):
        """A shard's id is a digest over its member (task id, store
        key) pairs — identical work keys identically on any host."""
        tasks = planned_tasks()
        shards = partition_tasks(tasks, shard_size=2)
        by_id = {t.task_id: t for t in tasks}
        for shard in shards:
            members = [by_id[tid] for tid in shard.task_ids]
            assert shard.id == shard_id(members)

    def test_config_change_changes_ids(self):
        base = partition_tasks(planned_tasks(), shard_size=2)
        changed = partition_tasks(planned_tasks(seed=12),
                                  shard_size=2)
        assert {s.id for s in base}.isdisjoint(
            {s.id for s in changed})


class TestPartitionShape:
    def test_every_task_in_exactly_one_shard(self):
        tasks = planned_tasks()
        shards = partition_tasks(tasks, shard_size=2)
        seen = [tid for s in shards for tid in s.task_ids]
        assert sorted(seen) == sorted(t.task_id for t in tasks)

    def test_empty_tasks_no_shards(self):
        assert partition_tasks([]) == []

    def test_n_shards_pins_count(self):
        tasks = planned_tasks()
        assert len(partition_tasks(tasks, n_shards=3)) == 3
        # never more shards than tasks
        assert len(partition_tasks(tasks, n_shards=99)) == len(tasks)

    def test_weights_are_member_sums(self):
        tasks = planned_tasks()
        by_id = {t.task_id: t for t in tasks}
        for shard in partition_tasks(tasks, shard_size=2):
            assert shard.weight == sum(
                by_id[tid].fault_class.count for tid in shard.task_ids)

    def test_balanced_within_heaviest_class(self):
        """Greedy LPT: no shard exceeds the lightest shard by more
        than one task's worth of the heaviest class."""
        tasks = planned_tasks()
        shards = partition_tasks(tasks, n_shards=3)
        loads = [s.weight for s in shards]
        heaviest_class = max(t.fault_class.count for t in tasks)
        assert max(loads) - min(loads) <= heaviest_class


class TestDispatchOrder:
    def test_shards_ordered_heaviest_first(self):
        shards = partition_tasks(planned_tasks(), shard_size=2)
        weights = [s.weight for s in shards]
        assert weights == sorted(weights, reverse=True)
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_members_keep_likelihood_order(self):
        """Within a shard, tasks run most-likely class first — the
        single-host schedule, shard-locally."""
        tasks = planned_tasks()
        rank = {t.task_id: k for k, t
                in enumerate(likelihood_order(tasks))}
        for shard in partition_tasks(tasks, shard_size=3):
            ranks = [rank[tid] for tid in shard.task_ids]
            assert ranks == sorted(ranks)


class TestHelpers:
    def test_shards_by_id(self):
        shards = partition_tasks(planned_tasks(), shard_size=2)
        mapping = shards_by_id(shards)
        assert all(mapping[s.id] is s for s in shards)
