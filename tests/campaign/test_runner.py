"""Tests for the campaign runner: dispatch, retry, resume, determinism.

Cheap runner-logic tests stub the per-class simulation (clockgen plans
quickly and the stub never builds an engine); the jobs-invariance test
at the bottom runs real simulations to pin down bit-reproducibility.
"""

import shutil

import pytest

import repro.campaign.tasks as tasks_mod
from repro.campaign import (CampaignOptions, CampaignRunner,
                            ClassCompleted, EventBus)
from repro.circuit.dc import ConvergenceError
from repro.core.path import DefectOrientedTestPath, PathConfig
from repro.macrotest.coverage import DetectionRecord


def tiny_config(**kwargs) -> PathConfig:
    defaults = dict(n_defects=1200, max_classes=3, seed=11,
                    include_noncat=True)
    defaults.update(kwargs)
    return PathConfig(**defaults)


def fake_record(fault_class) -> DetectionRecord:
    return DetectionRecord(count=fault_class.count,
                           voltage_detected=True,
                           mechanisms=frozenset(),
                           fault_type=fault_class.fault_type)


@pytest.fixture
def stub_simulation(monkeypatch):
    """Replace the physics with an instant stub; returns the call log."""
    calls = []

    def fake_simulate(fault_class, spec):
        calls.append((spec.macro,
                      fault_class.representative.collapse_key()))
        return fake_record(fault_class)

    monkeypatch.setattr(tasks_mod, "simulate_class", fake_simulate)
    return calls


class TestRunnerBasics:
    def test_assembles_path_result(self, stub_simulation):
        runner = CampaignRunner(tiny_config(),
                                CampaignOptions(jobs=1))
        result = runner.run(["clockgen"]).path_result
        analysis = result.macros["clockgen"]
        assert len(analysis.result.records) == 3
        assert analysis.noncat_result is not None
        assert all(r.voltage_detected
                   for r in analysis.result.records)

    def test_unknown_macro_rejected(self, stub_simulation):
        runner = CampaignRunner(tiny_config(), CampaignOptions(jobs=1))
        with pytest.raises(ValueError):
            runner.run(["fpga"])

    def test_metrics_account_for_every_class(self, stub_simulation):
        runner = CampaignRunner(tiny_config(), CampaignOptions(jobs=1))
        campaign = runner.run(["clockgen"])
        m = campaign.metrics
        assert m.total_tasks == m.completed == m.computed == 6
        assert m.cache_hits == m.degraded == 0

    def test_events_cover_all_classes(self, stub_simulation):
        bus = EventBus()
        seen = []
        runner = CampaignRunner(tiny_config(), CampaignOptions(jobs=1),
                                bus=bus)
        bus.subscribe(lambda e: isinstance(e, ClassCompleted) and
                      seen.append(e))
        runner.run(["clockgen"])
        assert len(seen) == 6
        assert [e.done for e in seen] == list(range(1, 7))


class TestRetryAndDegrade:
    def test_transient_failure_retried_once(self, monkeypatch):
        failed = set()

        def flaky(fault_class, spec):
            key = fault_class.representative.collapse_key()
            if key not in failed:
                failed.add(key)
                raise ConvergenceError("first attempt diverges")
            return fake_record(fault_class)

        monkeypatch.setattr(tasks_mod, "simulate_class", flaky)
        runner = CampaignRunner(tiny_config(include_noncat=False),
                                CampaignOptions(jobs=1))
        campaign = runner.run(["clockgen"])
        m = campaign.metrics
        assert m.degraded == 0
        assert m.retries == 3
        assert m.convergence_failures == 3
        assert all(r.voltage_detected for r in campaign.path_result
                   .macros["clockgen"].result.records)

    def test_persistent_failure_degrades_not_aborts(self, monkeypatch):
        def sick(fault_class, spec):
            raise ConvergenceError("never converges")

        monkeypatch.setattr(tasks_mod, "simulate_class", sick)
        bus = EventBus()
        degraded_events = []
        runner = CampaignRunner(tiny_config(include_noncat=False),
                                CampaignOptions(jobs=1), bus=bus)
        bus.subscribe(lambda e: isinstance(e, ClassCompleted) and
                      e.degraded and degraded_events.append(e))
        campaign = runner.run(["clockgen"])
        m = campaign.metrics
        assert m.completed == m.total_tasks == 3
        assert m.degraded == 3
        records = campaign.path_result.macros["clockgen"] \
            .result.records
        # degraded classes count as undetected: coverage can only
        # look worse, never better
        assert all(not r.detected for r in records)
        assert all("never converges" in e.error
                   for e in degraded_events)


class TestStoreIntegration:
    def test_rerun_hits_cache(self, stub_simulation, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=tmp_path)
        first = CampaignRunner(tiny_config(), options).run(["clockgen"])
        assert first.metrics.computed == 6
        second = CampaignRunner(tiny_config(), options).run(["clockgen"])
        assert second.metrics.cache_hits == 6
        assert second.metrics.computed == 0
        assert second.path_result == first.path_result

    def test_config_change_misses_cache(self, stub_simulation,
                                        tmp_path):
        import dataclasses
        from repro.adc.process import typical
        options = CampaignOptions(jobs=1, cache_dir=tmp_path)
        CampaignRunner(tiny_config(), options).run(["clockgen"])
        corner = dataclasses.replace(typical(), vdd=4.75,
                                     name="lowvdd")
        changed = CampaignRunner(tiny_config(process=corner),
                                 options).run(["clockgen"])
        assert changed.metrics.cache_hits == 0
        assert changed.metrics.computed == changed.metrics.total_tasks

    def test_degraded_results_not_cached(self, monkeypatch, tmp_path):
        def sick(fault_class, spec):
            raise ConvergenceError("no")

        monkeypatch.setattr(tasks_mod, "simulate_class", sick)
        options = CampaignOptions(jobs=1, cache_dir=tmp_path)
        CampaignRunner(tiny_config(include_noncat=False),
                       options).run(["clockgen"])
        monkeypatch.setattr(tasks_mod, "simulate_class",
                            lambda fc, spec: fake_record(fc))
        # journal (not resumed) and store must not replay the
        # degraded records — the classes get a fresh chance
        second = CampaignRunner(tiny_config(include_noncat=False),
                                options).run(["clockgen"])
        assert second.metrics.cache_hits == 0
        assert second.metrics.degraded == 0


class TestJournalResume:
    def test_resume_after_kill_skips_finished_classes(
            self, stub_simulation, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=tmp_path)
        first = CampaignRunner(tiny_config(), options).run(["clockgen"])
        journals = list((tmp_path / "journals").glob("*.jsonl"))
        assert len(journals) == 1
        # simulate a kill after 2 completed classes: truncate the
        # journal and delete the store so only the journal can help
        lines = journals[0].read_text().splitlines()
        journals[0].write_text("\n".join(lines[:3]) + "\n")
        shutil.rmtree(tmp_path / "objects")
        stub_simulation.clear()

        resumed = CampaignRunner(
            tiny_config(),
            CampaignOptions(jobs=1, cache_dir=tmp_path, resume=True)
        ).run(["clockgen"])
        assert resumed.metrics.journal_hits == 2
        assert resumed.metrics.computed == 4
        assert len(stub_simulation) == 4
        assert resumed.path_result == first.path_result

    def test_resume_ignores_other_campaigns_journal(
            self, stub_simulation, tmp_path):
        options = CampaignOptions(jobs=1, cache_dir=tmp_path)
        CampaignRunner(tiny_config(), options).run(["clockgen"])
        shutil.rmtree(tmp_path / "objects")
        other = CampaignRunner(
            tiny_config(seed=12),
            CampaignOptions(jobs=1, cache_dir=tmp_path, resume=True)
        ).run(["clockgen"])
        assert other.metrics.journal_hits == 0


class TestPathDelegation:
    def test_path_run_uses_runner(self, stub_simulation):
        result = DefectOrientedTestPath(tiny_config()) \
            .run(macros=["clockgen"])
        assert len(result.macros["clockgen"].result.records) == 3

    def test_progress_callback_still_fires(self, stub_simulation):
        calls = []
        DefectOrientedTestPath(tiny_config()).run(
            macros=["clockgen"],
            progress=lambda macro, done, total:
                calls.append((macro, done, total)))
        assert ("clockgen", 3, 3) in calls

    def test_unknown_macro_still_valueerror(self, stub_simulation):
        with pytest.raises(ValueError):
            DefectOrientedTestPath(tiny_config()).run(macros=["fpga"])


@pytest.mark.slow
class TestJobsInvariance:
    def test_jobs_1_and_4_identical_path_result(self):
        """The satellite guarantee: a campaign is bit-reproducible at
        any --jobs value (real simulations, no stubs)."""
        config = PathConfig(n_defects=1500, max_classes=3, seed=7,
                            include_noncat=True)
        serial = CampaignRunner(config, CampaignOptions(jobs=1)) \
            .run(["ladder", "decoder"]).path_result
        parallel = CampaignRunner(config, CampaignOptions(jobs=4)) \
            .run(["ladder", "decoder"]).path_result
        assert serial == parallel
