"""Tests for the store's streaming bulk-read and dictionary blobs."""

import json

import pytest

from repro.campaign.store import (ResultsStore, STORE_VERSION,
                                  dictionary_key)
from repro.campaign.tasks import EngineSpec
from repro.defects.collapse import FaultClass
from repro.defects.faults import ShortFault
from repro.faultsim.signatures import CurrentMechanism, VoltageSignature
from repro.macrotest.coverage import DetectionRecord


def short_class(nets=("a", "b"), resistance=0.5, count=3) -> FaultClass:
    return FaultClass(
        representative=ShortFault(nets=frozenset(nets), layer="metal1",
                                  resistance=resistance),
        count=count)


def spec(**kwargs) -> EngineSpec:
    return EngineSpec(macro="ladder", ivdd_window_halfwidth=0.02,
                      **kwargs)


def record(count=3) -> DetectionRecord:
    return DetectionRecord(
        count=count, voltage_detected=True,
        mechanisms=frozenset({CurrentMechanism.IVDD}),
        voltage_signature=VoltageSignature.OFFSET,
        violated_keys=frozenset({("ivdd", "sampling", "above")}))


def populate(store, n=4):
    keys = []
    for k in range(n):
        fc = short_class(nets=("a", f"n{k}"))
        key = store.key(fc, spec())
        store.put(key, record(count=k + 1),
                  meta={"task_id": f"ladder:cat:{k}", "macro": "ladder"})
        keys.append(key)
    return keys


class TestIterRecords:
    def test_streams_every_object_with_meta(self, tmp_path):
        store = ResultsStore(tmp_path)
        keys = populate(store)
        out = list(store.iter_records())
        assert {s.key for s in out} == set(keys)
        assert {s.meta["task_id"] for s in out} == \
            {f"ladder:cat:{k}" for k in range(4)}
        assert all(s.record.voltage_detected for s in out)

    def test_deterministic_order(self, tmp_path):
        store = ResultsStore(tmp_path)
        populate(store)
        first = [s.key for s in store.iter_records()]
        second = [s.key for s in store.iter_records()]
        assert first == second == sorted(first)

    def test_empty_store_yields_nothing(self, tmp_path):
        assert list(ResultsStore(tmp_path).iter_records()) == []

    def test_torn_object_skipped_with_warning(self, tmp_path):
        store = ResultsStore(tmp_path)
        keys = populate(store)
        store._path(keys[0]).write_text("{ torn json")
        with pytest.warns(UserWarning, match="corrupt store object"):
            out = list(store.iter_records())
        assert {s.key for s in out} == set(keys[1:])

    def test_malformed_record_skipped_with_warning(self, tmp_path):
        store = ResultsStore(tmp_path)
        keys = populate(store)
        payload = json.loads(store._path(keys[1]).read_text())
        payload["record"]["mechanisms"] = ["teleport"]
        store._path(keys[1]).write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="corrupt store object"):
            out = list(store.iter_records())
        assert {s.key for s in out} == set(keys) - {keys[1]}

    def test_version_mismatch_skipped_with_warning(self, tmp_path):
        old = ResultsStore(tmp_path, version="ancient")
        old.put(old.key(short_class(), spec()), record())
        store = ResultsStore(tmp_path)
        populate(store)
        with pytest.warns(UserWarning, match="store version"):
            out = list(store.iter_records())
        assert len(out) == 4

    def test_scan_does_not_touch_lookup_counters(self, tmp_path):
        store = ResultsStore(tmp_path)
        populate(store)
        list(store.iter_records())
        assert store.hits == 0 and store.misses == 0


class TestDictionaryBlobs:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = dictionary_key("f" * 64, 1)
        assert store.get_dictionary(key) is None
        assert store.dictionary_misses == 1
        store.put_dictionary(key, {"entries": [], "version": 1})
        assert store.get_dictionary(key) == {"entries": [],
                                             "version": 1}
        assert store.dictionary_hits == 1
        assert (tmp_path / "dictionaries" / f"{key}.json").is_file()

    def test_torn_dictionary_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = dictionary_key("f" * 64, 1)
        store.put_dictionary(key, {"version": 1})
        store._dictionary_path(key).write_text("[1, 2")
        assert store.get_dictionary(key) is None

    def test_key_varies_with_inputs(self):
        base = dictionary_key("a" * 64, 1)
        assert base != dictionary_key("b" * 64, 1)
        assert base != dictionary_key("a" * 64, 2)
        assert base != dictionary_key("a" * 64, 1,
                                      version=STORE_VERSION + "-next")
        assert base == dictionary_key("a" * 64, 1)


class TestConcurrentWriterVisibility:
    def test_inflight_tmp_stage_invisible_mid_iteration(self,
                                                        tmp_path):
        """A concurrent writer's staging file (``*.tmp``, possibly
        half-written) must be invisible to a reader iterating the
        store — publication is the atomic rename, nothing earlier."""
        store = ResultsStore(tmp_path)
        keys = populate(store)
        stage = store._path(keys[0]).with_suffix(".json.tmp")
        stage.write_text('{"version": "')  # torn mid-write
        out = list(store.iter_records())  # no warning, no tmp record
        assert {s.key for s in out} == set(keys)

    def test_object_published_mid_iteration_all_or_nothing(self,
                                                           tmp_path):
        """An object that appears between directory scan and read is
        either fully visible or absent — never torn: readers only ever
        open published (renamed) files."""
        store = ResultsStore(tmp_path)
        populate(store)
        seen = []
        iterator = store.iter_records()
        seen.append(next(iterator))
        # a writer publishes a new object while the reader is mid-walk
        fc = short_class(nets=("a", "late"))
        store.put(store.key(fc, spec()), record(count=9),
                  meta={"task_id": "ladder:cat:9", "macro": "ladder"})
        rest = list(iterator)
        for stored in seen + rest:
            assert stored.record is not None  # every yield is whole
