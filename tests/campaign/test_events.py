"""Tests for the campaign event bus, metrics and console reporter."""

import io
import threading

from repro.campaign.events import (CampaignFinished, CampaignStarted,
                                   ClassCompleted, ConsoleReporter,
                                   EventBus, MetricsCollector)


def completed(source="computed", wall=1.0, done=1, total=4, **kwargs):
    return ClassCompleted(macro="ladder", kind="cat", index=done - 1,
                          source=source, wall=wall, done=done,
                          total=total, **kwargs)


class TestEventBus:
    def test_fan_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)))
        bus.subscribe(lambda e: seen.append(("b", e)))
        event = completed()
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_concurrent_emit_delivers_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        threads = [threading.Thread(
            target=lambda: [bus.emit(completed()) for _ in range(50)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 200


class TestMetricsCollector:
    def test_folds_sources(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=4,
                                  jobs=1))
        collector(completed(source="computed", wall=2.0, done=1))
        collector(completed(source="cache", wall=0.0, done=2))
        collector(completed(source="journal", wall=0.0, done=3))
        collector(completed(source="computed", wall=4.0, done=4,
                            degraded=True, retried=True,
                            error="boom"))
        m = collector.snapshot()
        assert m.completed == 4
        assert m.computed == 2
        assert m.cache_hits == 1
        assert m.journal_hits == 1
        assert m.degraded == 1
        assert m.retries == 1
        assert m.simulated_time == 6.0
        assert m.macro_wall == {"ladder": 6.0}
        assert m.cache_hit_rate == 0.5

    def test_eta_scales_with_jobs(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=10,
                                  jobs=1))
        collector(completed(source="computed", wall=2.0, done=1,
                            total=10))
        collector(completed(source="computed", wall=4.0, done=2,
                            total=10))
        serial = collector.snapshot(jobs=1)
        quad = collector.snapshot(jobs=4)
        assert serial.eta == 8 * 3.0  # 8 remaining at 3 s/class mean
        assert quad.eta == serial.eta / 4

    def test_eta_none_before_any_computed(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=4,
                                  jobs=1))
        collector(completed(source="cache", done=1))
        assert collector.snapshot().eta is None

    def test_convergence_failures_counted(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=(), total_tasks=0, jobs=1))
        collector.add_convergence_failures(2)
        assert collector.snapshot().convergence_failures == 2

    def test_as_dict_is_json_shaped(self):
        import json
        json.dumps(MetricsCollector().snapshot().as_dict())


class TestConsoleReporter:
    def test_one_whole_line_per_write(self):
        """The thread-safety contract: every write is one complete
        newline-terminated line, so parallel macro streams can never
        interleave mid-line on stderr."""
        writes = []

        class Capture(io.StringIO):
            def write(self, text):
                writes.append(text)
                return len(text)

        reporter = ConsoleReporter(stream=Capture(), every=1)
        reporter(CampaignStarted(macros=("ladder", "clockgen"),
                                 total_tasks=8, jobs=4, resumed=2))
        reporter(completed(done=1, total=8))
        assert all(w.endswith("\n") and w.count("\n") == 1
                   for w in writes)

    def test_throttles_to_every_n(self):
        stream = io.StringIO()
        reporter = ConsoleReporter(stream=stream, every=10)
        for done in range(1, 20):
            reporter(completed(done=done, total=20))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "10/20" in lines[0]

    def test_degraded_always_reported(self):
        stream = io.StringIO()
        reporter = ConsoleReporter(stream=stream, every=100)
        reporter(completed(done=1, total=50, degraded=True,
                           error="boom"))
        assert "DEGRADED" in stream.getvalue()

    def test_final_summary(self):
        stream = io.StringIO()
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=2,
                                  jobs=1))
        collector(completed(done=1, total=2))
        collector(completed(source="cache", done=2, total=2))
        reporter = ConsoleReporter(stream=stream, every=1,
                                   collector=collector)
        reporter(CampaignFinished(metrics=collector.snapshot()))
        out = stream.getvalue()
        assert "2/2 classes" in out
        assert "1 cache hits" in out
