"""Tests for the campaign event bus, metrics and console reporter."""

import io
import threading

import pytest

from repro.campaign.events import (CampaignFinished, CampaignStarted,
                                   ClassCompleted, ConsoleReporter,
                                   EventBus, MetricsCollector)


def completed(source="computed", wall=1.0, done=1, total=4, **kwargs):
    return ClassCompleted(macro="ladder", kind="cat", index=done - 1,
                          source=source, wall=wall, done=done,
                          total=total, **kwargs)


class TestEventBus:
    def test_fan_out_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)))
        bus.subscribe(lambda e: seen.append(("b", e)))
        event = completed()
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_concurrent_emit_delivers_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        threads = [threading.Thread(
            target=lambda: [bus.emit(completed()) for _ in range(50)])
            for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 200


class TestMetricsCollector:
    def test_folds_sources(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=4,
                                  jobs=1))
        collector(completed(source="computed", wall=2.0, done=1))
        collector(completed(source="cache", wall=0.0, done=2))
        collector(completed(source="journal", wall=0.0, done=3))
        collector(completed(source="computed", wall=4.0, done=4,
                            degraded=True, retried=True,
                            error="boom"))
        m = collector.snapshot()
        assert m.completed == 4
        assert m.computed == 2
        assert m.cache_hits == 1
        assert m.journal_hits == 1
        assert m.degraded == 1
        assert m.retries == 1
        assert m.simulated_time == 6.0
        assert m.macro_wall == {"ladder": 6.0}
        assert m.cache_hit_rate == 0.5

    def test_eta_scales_with_jobs(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=10,
                                  jobs=1))
        collector(completed(source="computed", wall=2.0, done=1,
                            total=10))
        collector(completed(source="computed", wall=4.0, done=2,
                            total=10))
        serial = collector.snapshot(jobs=1)
        quad = collector.snapshot(jobs=4)
        assert serial.eta == 8 * 3.0  # 8 remaining at 3 s/class mean
        assert quad.eta == serial.eta / 4

    def test_eta_none_before_any_computed(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=4,
                                  jobs=1))
        collector(completed(source="cache", done=1))
        assert collector.snapshot().eta is None

    def test_convergence_failures_counted(self):
        collector = MetricsCollector()
        collector(CampaignStarted(macros=(), total_tasks=0, jobs=1))
        collector.add_convergence_failures(2)
        assert collector.snapshot().convergence_failures == 2

    def test_as_dict_is_json_shaped(self):
        import json
        json.dumps(MetricsCollector().snapshot().as_dict())


class TestConsoleReporter:
    def test_one_whole_line_per_write(self):
        """The thread-safety contract: every write is one complete
        newline-terminated line, so parallel macro streams can never
        interleave mid-line on stderr."""
        writes = []

        class Capture(io.StringIO):
            def write(self, text):
                writes.append(text)
                return len(text)

        reporter = ConsoleReporter(stream=Capture(), every=1)
        reporter(CampaignStarted(macros=("ladder", "clockgen"),
                                 total_tasks=8, jobs=4, resumed=2))
        reporter(completed(done=1, total=8))
        assert all(w.endswith("\n") and w.count("\n") == 1
                   for w in writes)

    def test_throttles_to_every_n(self):
        stream = io.StringIO()
        reporter = ConsoleReporter(stream=stream, every=10)
        for done in range(1, 20):
            reporter(completed(done=done, total=20))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "10/20" in lines[0]

    def test_degraded_always_reported(self):
        stream = io.StringIO()
        reporter = ConsoleReporter(stream=stream, every=100)
        reporter(completed(done=1, total=50, degraded=True,
                           error="boom"))
        assert "DEGRADED" in stream.getvalue()

    def test_final_summary(self):
        stream = io.StringIO()
        collector = MetricsCollector()
        collector(CampaignStarted(macros=("ladder",), total_tasks=2,
                                  jobs=1))
        collector(completed(done=1, total=2))
        collector(completed(source="cache", done=2, total=2))
        reporter = ConsoleReporter(stream=stream, every=1,
                                   collector=collector)
        reporter(CampaignFinished(metrics=collector.snapshot()))
        out = stream.getvalue()
        assert "2/2 classes" in out
        assert "1 cache hits" in out


class TestSubscriberIsolation:
    def test_raising_subscriber_does_not_kill_emit(self):
        """Regression: one sick subscriber must never take the
        campaign loop (or a coordinator request thread) down — the
        exception is logged, later subscribers still run."""
        bus = EventBus()
        seen = []

        def sick(event):
            raise RuntimeError("reporter exploded")

        bus.subscribe(sick)
        bus.subscribe(seen.append)
        event = completed()
        bus.emit(event)  # must not raise
        assert seen == [event]

    def test_failure_logged_with_traceback(self, caplog):
        import logging

        bus = EventBus()
        bus.subscribe(lambda e: 1 / 0)
        with caplog.at_level(logging.ERROR,
                             logger="repro.campaign.events"):
            bus.emit(completed())
        assert any("subscriber" in r.message for r in caplog.records)
        assert any(r.exc_info for r in caplog.records)

    def test_sick_subscriber_gets_later_events(self):
        """Isolation is per event, not an unsubscribe: a subscriber
        that failed once still sees the next event."""
        bus = EventBus()
        calls = []

        def flaky(event):
            calls.append(event)
            if len(calls) == 1:
                raise ValueError("only the first hurts")

        bus.subscribe(flaky)
        bus.emit(completed(done=1))
        bus.emit(completed(done=2))
        assert len(calls) == 2


class TestDistributedMetricsCollector:
    @staticmethod
    def make(clock=None, shards=4, weight=40):
        from repro.campaign.events import DistributedMetricsCollector
        collector = DistributedMetricsCollector(
            clock=clock or (lambda: 0.0))
        collector.set_totals(shards, weight)
        return collector

    @staticmethod
    def events():
        from repro.campaign.events import (ShardClaimed,
                                           ShardCompleted,
                                           ShardReclaimed)
        return ShardClaimed, ShardCompleted, ShardReclaimed

    def test_folds_per_worker_throughput(self):
        Claimed, Completed, _ = self.events()
        collector = self.make()
        collector(Claimed(shard_id="s1", worker="w1", n_tasks=4,
                          weight=10))
        collector(Completed(shard_id="s1", worker="w1", n_tasks=4,
                            weight=10, wall=2.0))
        collector(Claimed(shard_id="s2", worker="w1", n_tasks=2,
                          weight=5))
        collector(Completed(shard_id="s2", worker="w1", n_tasks=2,
                            weight=5, wall=1.0))
        snapshot = collector.snapshot()
        stats = snapshot.workers["w1"]
        assert stats.shards == 2 and stats.tasks == 6
        assert stats.throughput == 6 / 3.0
        assert snapshot.shards_done == 2

    def test_duplicate_completion_not_double_counted(self):
        _, Completed, _ = self.events()
        collector = self.make()
        collector(Completed(shard_id="s1", worker="w1", n_tasks=4,
                            weight=10, wall=2.0))
        collector(Completed(shard_id="s1", worker="w2", n_tasks=4,
                            weight=10, duplicate=True))
        snapshot = collector.snapshot()
        assert snapshot.shards_done == 1
        assert snapshot.duplicate_reports == 1
        assert "w2" not in snapshot.workers

    def test_reclaims_counted_and_lease_freed(self):
        Claimed, _, Reclaimed = self.events()
        collector = self.make()
        collector(Claimed(shard_id="s1", worker="w1", n_tasks=4,
                          weight=10))
        collector(Reclaimed(shard_id="s1", worker="w1", retries=1))
        snapshot = collector.snapshot()
        assert snapshot.reclaims == 1
        assert snapshot.shards_leased == 0

    def test_straggler_detection_uses_coordinator_clock(self):
        now = [100.0]
        Claimed, Completed, _ = self.events()
        collector = self.make(clock=lambda: now[0])
        for k in range(3):
            collector(Completed(shard_id=f"d{k}", worker="w1",
                                n_tasks=2, weight=5, wall=1.0))
        collector(Claimed(shard_id="slow", worker="w2", n_tasks=2,
                          weight=5))
        collector(Claimed(shard_id="quick", worker="w3", n_tasks=2,
                          weight=5))
        now[0] += 1.5  # under 2x median (2.0s): nobody straggles yet
        assert collector.snapshot().stragglers == ()
        now[0] += 1.0  # 2.5s out: both leased shards straggle
        assert collector.snapshot().stragglers == ("quick", "slow")

    def test_weighted_eta_from_active_workers(self):
        _, Completed, _ = self.events()
        collector = self.make(shards=4, weight=40)
        collector(Completed(shard_id="s1", worker="w1", n_tasks=4,
                            weight=10, wall=5.0))
        collector(Completed(shard_id="s2", worker="w2", n_tasks=4,
                            weight=10, wall=5.0))
        snapshot = collector.snapshot()
        # 20 weight left at 0.5 s/unit over 2 active workers
        assert snapshot.eta == pytest.approx(5.0)

    def test_as_dict_json_shaped(self):
        import json
        json.dumps(self.make().snapshot().as_dict())
