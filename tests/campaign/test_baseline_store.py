"""Baseline blobs in the store, and the likelihood dispatch order.

The baseline cache is keyed by the *normalised* engine spec: the
warm_start / drop performance knobs must not fragment it (a cold
exhaustive campaign and an incremental one share the same fault-free
circuit), while anything that changes the physics must.
"""

import dataclasses
import json
from types import SimpleNamespace

from repro.campaign.plan import likelihood_order
from repro.campaign.store import ResultsStore, baseline_key
from repro.campaign.tasks import EngineSpec


def spec(**kwargs) -> EngineSpec:
    return EngineSpec(macro="ladder", ivdd_window_halfwidth=0.02,
                      **kwargs)


class TestBaselineKey:
    def test_performance_knobs_share_a_key(self):
        base = baseline_key(spec())
        for knobs in ({"warm_start": False}, {"drop": False},
                      {"warm_start": False, "drop": False}):
            assert baseline_key(spec(**knobs)) == base

    def test_physics_changes_split_the_key(self):
        base = baseline_key(spec())
        assert baseline_key(spec(dt=2e-9)) != base
        assert baseline_key(dataclasses.replace(
            spec(), macro="clockgen")) != base
        assert baseline_key(dataclasses.replace(
            spec(), ivdd_window_halfwidth=0.03)) != base

    def test_dft_variant_splits_the_key(self):
        """The engine registry is keyed by this digest, so a DfT
        comparator must never look up the standard baseline."""
        std = EngineSpec(macro="comparator")
        dft = EngineSpec(macro="comparator", dft_flipflop=True)
        assert baseline_key(std) != baseline_key(dft)

    def test_version_splits_the_key(self):
        assert baseline_key(spec(), version="a") != \
            baseline_key(spec(), version="b")


class TestBlobStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = baseline_key(spec())
        assert store.get_blob(key) is None
        assert (store.baseline_hits, store.baseline_misses) == (0, 1)
        store.put_blob(key, {"macro": "ladder", "payload": {"x": 1.5}})
        assert store.get_blob(key) == {"macro": "ladder",
                                       "payload": {"x": 1.5}}
        assert (store.baseline_hits, store.baseline_misses) == (1, 1)

    def test_fresh_store_instance_reads_blob(self, tmp_path):
        key = baseline_key(spec())
        ResultsStore(tmp_path).put_blob(key, {"a": 1})
        assert ResultsStore(tmp_path).get_blob(key) == {"a": 1}

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = baseline_key(spec())
        store.put_blob(key, {"a": 1})
        path, = (tmp_path / "baselines").glob("*.json")
        path.write_text("{not json")
        assert store.get_blob(key) is None
        assert store.baseline_misses == 1

    def test_non_dict_blob_is_a_miss(self, tmp_path):
        store = ResultsStore(tmp_path)
        key = baseline_key(spec())
        store.put_blob(key, {"a": 1})
        path, = (tmp_path / "baselines").glob("*.json")
        path.write_text(json.dumps([1, 2]))
        assert store.get_blob(key) is None
        assert store.baseline_misses == 1


class TestLikelihoodOrder:
    @staticmethod
    def task(task_id, count):
        return SimpleNamespace(task_id=task_id,
                               fault_class=SimpleNamespace(count=count))

    def test_heaviest_first_ties_by_task_id(self):
        tasks = [self.task("ladder:short:2", 5),
                 self.task("ladder:short:0", 9),
                 self.task("ladder:short:1", 5)]
        ordered = likelihood_order(tasks)
        assert [t.task_id for t in ordered] == \
            ["ladder:short:0", "ladder:short:1", "ladder:short:2"]

    def test_input_not_mutated(self):
        tasks = [self.task("b", 1), self.task("a", 2)]
        likelihood_order(tasks)
        assert [t.task_id for t in tasks] == ["b", "a"]
