"""Tests for within-die mismatch analysis."""

import math

import numpy as np
import pytest

from repro.adc.comparator import build_comparator
from repro.adc.mismatch import (A_VT, apply_mismatch, comparator_offset,
                                offset_distribution)
from repro.circuit import Mosfet


class TestApplyMismatch:
    def test_shifts_every_mosfet(self):
        c = build_comparator()
        n_mos = sum(1 for el in c.elements if isinstance(el, Mosfet))
        shifts = apply_mismatch(c, np.random.default_rng(1))
        assert len(shifts) == n_mos
        assert any(abs(s) > 1e-4 for s in shifts)

    def test_sigma_scales_with_area(self):
        """Pelgrom: bigger devices match better."""
        rng = np.random.default_rng(2)
        c = build_comparator()
        small = [el for el in c.elements if isinstance(el, Mosfet)
                 and el.w * el.l < 5e-12]
        big = [el for el in c.elements if isinstance(el, Mosfet)
               and el.w * el.l > 20e-12]
        assert small and big
        # expected sigmas from the law
        sig_small = A_VT / math.sqrt(small[0].w * small[0].l)
        sig_big = A_VT / math.sqrt(big[0].w * big[0].l)
        assert sig_big < sig_small

    def test_deterministic_per_seed(self):
        a = apply_mismatch(build_comparator(), np.random.default_rng(7))
        b = apply_mismatch(build_comparator(), np.random.default_rng(7))
        assert a == b


class TestOffset:
    def test_zero_mismatch_zero_offset(self):
        off = comparator_offset(a_vt=1e-15, resolution=2e-3)
        assert abs(off) <= 3e-3

    def test_mismatched_instance_has_finite_offset(self):
        off = comparator_offset(rng=np.random.default_rng(3),
                                resolution=4e-3)
        assert -32e-3 <= off <= 32e-3

    def test_distribution_spread(self):
        """A handful of samples: offsets spread over a few mV but stay
        within the search span."""
        offsets = offset_distribution(n_samples=4, seed=5,
                                      resolution=8e-3)
        assert len(offsets) == 4
        assert np.all(np.abs(offsets) <= 32e-3)
        assert np.std(offsets) > 0.0

    def test_bad_sample_count(self):
        with pytest.raises(ValueError):
            offset_distribution(n_samples=0)
