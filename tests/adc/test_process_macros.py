"""Tests for the process model, ladder, bias generator and clock
generator macros."""

import numpy as np
import pytest

import repro.adc as adc
from repro.adc.process import (VDD_NOMINAL, corner, good_space_corners,
                               reduced_corners, typical)
from repro.circuit import operating_point, supply_current, transient
from repro.layout import verify_cell


class TestProcess:
    def test_typical(self):
        p = typical()
        assert p.vdd == VDD_NOMINAL
        assert p.nmos.vto == pytest.approx(0.70)
        assert p.pmos.vto == pytest.approx(-0.80)

    def test_corner_shifts(self):
        slow = corner(-1.0, 4.5, 27.0)
        fast = corner(+1.0, 5.5, 27.0)
        assert slow.nmos.vto > typical().nmos.vto
        assert fast.nmos.vto < typical().nmos.vto
        assert slow.nmos.kp < fast.nmos.kp
        assert slow.vdd == 4.5 and fast.vdd == 5.5

    def test_temperature_dependence(self):
        hot = typical().with_temperature(85.0)
        assert hot.nmos.kp < typical().nmos.kp       # mobility drops
        assert hot.nmos.vto < typical().nmos.vto     # vth drops

    def test_corner_sets(self):
        assert len(good_space_corners()) == 27
        assert len(reduced_corners()) == 5
        names = [p.name for p in reduced_corners()]
        assert len(set(names)) == 5


class TestLadder:
    def test_taps_monotone_and_centred(self):
        tb = adc.ladder_testbench()
        taps = adc.tap_voltages(tb)
        assert np.all(np.diff(taps) > 0)
        assert taps[128] == pytest.approx(2.5, abs=0.01)

    def test_dual_ladder_redundancy(self):
        """Removing one fine segment barely disturbs the taps because
        the coarse ladder pins every 16th node."""
        tb = adc.ladder_testbench()
        nominal = adc.tap_voltages(tb)
        tb2 = adc.ladder_testbench()
        tb2.element("RF100").resistance = 1e9  # open fine segment
        perturbed = adc.tap_voltages(tb2)
        # disturbance confined to the affected coarse span
        outside = np.concatenate([np.abs(perturbed[:96] - nominal[:96]),
                                  np.abs(perturbed[113:] - nominal[113:])])
        assert outside.max() < 1e-3

    def test_reference_current_scale(self):
        i = adc.reference_current(adc.ladder_testbench())
        assert 0.01 < i < 0.1  # tens of mA through the dual ladder

    def test_short_changes_reference_current(self):
        """The property behind 99.8 % current detectability."""
        tb = adc.ladder_testbench()
        i_nom = adc.reference_current(tb)
        tb2 = adc.ladder_testbench()
        from repro.circuit import Resistor
        tb2.add(Resistor("FSHORT", "tap128", "tap144", 0.2))
        i_faulty = adc.reference_current(tb2)
        assert abs(i_faulty - i_nom) / i_nom > 0.02

    def test_slice_layout_clean(self):
        cell = adc.ladder_slice_layout()
        assert verify_cell(cell) == []

    def test_bad_tap_count_rejected(self):
        with pytest.raises(ValueError):
            adc.build_ladder(n_taps=100)  # not a multiple of 16

    def test_nominal_taps(self):
        taps = adc.nominal_tap_voltages()
        assert len(taps) == 257
        assert taps[0] == adc.VREF_LOW
        assert taps[-1] == adc.VREF_HIGH


class TestBiasgen:
    def test_bias_voltages_marginally_different(self):
        v1, v2 = adc.bias_voltages()
        assert 1.0 < v1 < 1.4
        assert 0.005 < abs(v2 - v1) < 0.05  # marginally different

    def test_bias_tracks_process(self):
        v1_slow, _ = adc.bias_voltages(corner(-1.0, 5.0, 27.0))
        v1_fast, _ = adc.bias_voltages(corner(+1.0, 5.0, 27.0))
        assert v1_slow > v1_fast  # higher vth -> higher diode voltage

    def test_layout_variants(self):
        std = adc.biasgen_layout(dft=False)
        dft = adc.biasgen_layout(dft=True)
        assert verify_cell(std) == []
        assert verify_cell(dft) == []

        def track_y(cell, net):
            return min(s.rect.y0 for s in cell.shapes_on("metal1")
                       if s.net == net and s.rect.width > 20)

        # standard: vbn1 and vbn2 adjacent; DfT: separated
        assert abs(track_y(std, "vbn1") - track_y(std, "vbn2")) == \
            pytest.approx(3.0)
        assert abs(track_y(dft, "vbn1") - track_y(dft, "vbn2")) > 3.0


class TestClockgen:
    def test_phases_buffered_full_swing(self):
        tb = adc.clockgen_testbench()
        tr = transient(tb, tstop=adc.CLOCK_PERIOD, dt=1e-9)
        levels = adc.clock_levels(tr)
        for phase, level in levels.items():
            assert level == pytest.approx(5.0, abs=0.05), phase

    def test_iddq_negligible_when_fault_free(self):
        """The defining property of the digital macro: near-zero IDDQ."""
        tb = adc.clockgen_testbench()
        tr = transient(tb, tstop=adc.CLOCK_PERIOD, dt=1e-9)
        assert adc.iddq(tr) < 1e-6

    def test_iddq_elevated_by_clock_line_short(self):
        from repro.circuit import Resistor
        tb = adc.clockgen_testbench()
        tb.add(Resistor("FBRIDGE", "phi1", "gnd", 500.0))
        tr = transient(tb, tstop=adc.CLOCK_PERIOD, dt=1e-9)
        assert adc.iddq(tr) > 1e-3

    def test_layout_clean(self):
        assert verify_cell(adc.clockgen_layout()) == []
