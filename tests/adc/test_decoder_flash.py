"""Tests for the decoder macro and the behavioral flash ADC."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.behavioral import (ClockBehavior, ComparatorBehavior,
                                  DecoderBehavior, LadderBehavior)
from repro.adc.decoder import (build_decoder, decode_outputs,
                               decode_thermometer, thermometer_vector)
from repro.adc.flash import FlashADC, nominal_adc
from repro.adc.ladder import nominal_tap_voltages


class TestDecoderGateLevel:
    @pytest.fixture(scope="class")
    def dec4(self):
        return build_decoder(4)

    def test_exhaustive_4bit(self, dec4):
        for code in range(16):
            out = dec4.outputs(thermometer_vector(code, 4))
            assert decode_outputs(out, 4) == code

    def test_vector_validation(self):
        with pytest.raises(ValueError):
            thermometer_vector(16, 4)
        with pytest.raises(ValueError):
            thermometer_vector(-1, 4)

    def test_8bit_spot_codes(self):
        dec8 = build_decoder(8)
        for code in (0, 1, 127, 128, 200, 255):
            out = dec8.outputs(thermometer_vector(code, 8))
            assert decode_outputs(out, 8) == code

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_property_4bit(self, code):
        dec = build_decoder(4)
        assert decode_outputs(dec.outputs(thermometer_vector(code, 4)),
                              4) == code


class TestDecodeThermometer:
    def test_counts_ones(self):
        assert decode_thermometer([True, True, False]) == 2
        assert decode_thermometer([]) == 0

    def test_bubble_tolerant(self):
        # a bubble (stuck-at-0 in the middle) shifts the count by one
        levels = [True] * 100 + [False] + [True] * 27 + [False] * 127
        assert decode_thermometer(levels) == 127


class TestComparatorBehavior:
    def test_nominal_decision(self):
        c = ComparatorBehavior()
        assert c.decide(2.51, 2.5) is True
        assert c.decide(2.49, 2.5) is False

    def test_offset(self):
        c = ComparatorBehavior(offset=0.05)
        assert c.decide(2.46, 2.5) is True

    def test_stuck(self):
        assert ComparatorBehavior(stuck=True).decide(0.0, 2.5) is True
        assert ComparatorBehavior(stuck=False).decide(5.0, 2.5) is False

    def test_mixed_band(self):
        c = ComparatorBehavior(mixed_band=0.02)
        assert c.decide(2.51, 2.5) is False   # inside band: wrong
        assert c.decide(2.6, 2.5) is True     # outside band: correct


class TestFlashADC:
    def test_nominal_conversion(self):
        a = nominal_adc()
        lo, hi = a.full_scale()
        assert a.convert(lo - 0.1) == 0
        assert a.convert(hi + 0.1) == 255
        assert a.convert((lo + hi) / 2) in (127, 128)

    def test_all_codes_reachable_and_monotone(self):
        a = nominal_adc()
        codes = a.transfer_codes(4096)
        assert set(codes.tolist()) == set(range(256))
        assert np.all(np.diff(codes) >= 0)

    def test_stuck_comparator_missing_code(self):
        a = nominal_adc().with_comparator(100, ComparatorBehavior(
            stuck=False))
        codes = set(a.transfer_codes(8192).tolist())
        # the bubble makes the OR plane merge boundary rows: codes above
        # the stuck row get ORed with its index and many codes vanish
        assert len(codes) < 256
        # comparator 100 drives thermometer row 101; with it stuck the
        # clean boundary that produces code 101 can never form
        assert 101 not in codes

    def test_stuck_high_comparator_missing_code_zero(self):
        a = nominal_adc().with_comparator(100, ComparatorBehavior(
            stuck=True))
        codes = set(a.transfer_codes(8192).tolist())
        assert 0 not in codes

    def test_small_offset_no_missing_code(self):
        a = nominal_adc().with_comparator(100, ComparatorBehavior(
            offset=0.003))  # < 1 LSB (7.8 mV)
        codes = set(a.transfer_codes(8192).tolist())
        assert len(codes) == 256

    def test_large_offset_missing_code(self):
        a = nominal_adc().with_comparator(100, ComparatorBehavior(
            offset=0.020))  # > 2 LSB
        codes = set(a.transfer_codes(8192).tolist())
        assert len(codes) < 256

    def test_dead_clock_collapses_output(self):
        a = nominal_adc().with_clocks(ClockBehavior(phi2_ok=False))
        assert len(set(a.transfer_codes(512).tolist())) == 1

    def test_degraded_clock_no_static_effect(self):
        a = nominal_adc().with_clocks(ClockBehavior(degraded=True))
        assert set(a.transfer_codes(4096).tolist()) == set(range(256))

    def test_faulty_ladder_injection(self):
        taps = nominal_tap_voltages().copy()
        taps[50:60] = taps[50]  # collapsed span (shorted segments)
        a = nominal_adc().with_ladder(LadderBehavior(taps=taps))
        codes = set(a.transfer_codes(8192).tolist())
        assert len(codes) < 256

    def test_decoder_stuck_bit(self):
        a = nominal_adc().with_decoder(DecoderBehavior(
            stuck_bits={7: False}))
        codes = set(a.transfer_codes(4096).tolist())
        assert max(codes) < 128

    def test_injection_bounds_checked(self):
        with pytest.raises(ValueError):
            nominal_adc().with_comparator(256, ComparatorBehavior())
