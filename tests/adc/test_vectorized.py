"""Vectorised ADC paths are bit-identical to their scalar twins.

``convert_many`` / ``decode_many`` / ``boundary_decode_many`` replaced
per-sample Python loops on the campaign's hot paths; these tests pin
the contract that vectorisation changed the speed and nothing else.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.adc.behavioral import (ClockBehavior, ComparatorBehavior,
                                  DecoderBehavior)
from repro.adc.decoder import boundary_decode, boundary_decode_many
from repro.adc.flash import nominal_adc


def ramp(n=300):
    lo, hi = nominal_adc().full_scale()
    span = hi - lo
    return np.linspace(lo - 0.05 * span, hi + 0.05 * span, n)


class TestBoundaryDecodeMany:
    @given(st.lists(st.lists(st.booleans(), min_size=255,
                             max_size=255), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_rowwise(self, rows):
        levels = np.array(rows, dtype=bool)
        expected = [boundary_decode(list(r)) for r in rows]
        assert boundary_decode_many(levels).tolist() == expected

    def test_short_rows_rejected(self):
        short = np.zeros((2, 100), dtype=bool)
        try:
            boundary_decode_many(short)
            raise AssertionError("short rows accepted")
        except ValueError:
            pass

    def test_stuck_decoder_bits_match(self):
        dec = DecoderBehavior(stuck_bits={3: True, 0: False})
        levels = np.zeros((10, 255), dtype=bool)
        levels[:, :50] = True
        many = dec.decode_many(levels)
        assert many.tolist() == [dec.decode(list(r)) for r in levels]


class TestConvertMany:
    def adcs(self):
        yield nominal_adc()
        yield nominal_adc().with_comparator(
            100, ComparatorBehavior(stuck=True))
        yield nominal_adc().with_comparator(
            80, ComparatorBehavior(offset=0.05))
        yield nominal_adc().with_comparator(
            120, ComparatorBehavior(mixed_band=0.02))
        yield nominal_adc().with_comparator(
            60, ComparatorBehavior(clock_degraded=True))
        yield nominal_adc().with_clocks(ClockBehavior(phi2_ok=False))
        yield nominal_adc().with_clocks(ClockBehavior(degraded=True))

    def test_matches_scalar_convert(self):
        vins = ramp()
        for adc in self.adcs():
            for at_speed in (False, True):
                many = adc.convert_many(vins, at_speed=at_speed)
                scalar = [adc.convert(float(v), at_speed=at_speed)
                          for v in vins]
                assert many.tolist() == scalar, \
                    f"divergence (at_speed={at_speed})"

    def test_transfer_codes_monotonic_nominal(self):
        codes = nominal_adc().transfer_codes(512)
        assert np.all(np.diff(codes) >= 0)
