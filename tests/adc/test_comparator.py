"""Tests for the comparator macro (circuit-level)."""

import numpy as np
import pytest

from repro.adc.comparator import (CLOCK_PERIOD, build_comparator,
                                  build_testbench, comparator_clocks,
                                  comparator_layout, phase_measure_times,
                                  regeneration_windows)
from repro.adc.process import corner, typical
from repro.circuit import supply_current, transient
from repro.layout import verify_cell

T = CLOCK_PERIOD


def decide(vin, vref=2.5, process=None, dft=False):
    tb = build_testbench(process=process, vin=vin, vref=vref, dft=dft)
    tr = transient(tb.circuit, tstop=T, dt=1e-9,
                   fine_windows=regeneration_windows(T, 1))
    p = process or typical()
    return tr.at_time("ffout", 0.97 * T) > p.vdd / 2.0, tr


class TestDecision:
    @pytest.mark.parametrize("dv", [0.1, 0.008, 0.004])
    def test_positive_inputs(self, dv):
        out, _ = decide(2.5 + dv)
        assert out is True

    @pytest.mark.parametrize("dv", [0.1, 0.008, 0.004])
    def test_negative_inputs(self, dv):
        out, _ = decide(2.5 - dv)
        assert out is False

    def test_decision_at_corners(self):
        for p in (corner(-1.0, 4.5, 85.0), corner(1.0, 5.5, -20.0)):
            assert decide(2.508, process=p)[0] is True
            assert decide(2.492, process=p)[0] is False

    def test_dft_variant_still_decides(self):
        assert decide(2.6, dft=True)[0] is True
        assert decide(2.4, dft=True)[0] is False

    def test_works_at_other_references(self):
        assert decide(1.6, vref=1.55)[0] is True
        assert decide(3.3, vref=3.45)[0] is False


class TestCurrents:
    def test_supply_current_class_a(self):
        """Sampling and amplification draw bias current; the latch phase
        draws (almost) nothing once regenerated."""
        _, tr = decide(2.6)
        ivdd = supply_current(tr, "VDD")
        t_samp, t_amp, t_latch = phase_measure_times(T, 0)
        at = lambda t: ivdd[int(np.argmin(np.abs(tr.times - t)))]
        assert 20e-6 < at(t_samp) < 500e-6
        assert 10e-6 < at(t_amp) < 300e-6
        assert at(t_latch) < 60e-6

    def test_leak_spread_removed_by_dft(self):
        """Paper DfT measure 1: the flipflop leak dominates the
        process spread of the sampling-phase supply current."""
        def sampling_current(process, dft):
            _, tr = decide(2.6, process=process, dft=dft)
            ivdd = supply_current(tr, "VDD")
            t_samp = phase_measure_times(T, 0)[0]
            return ivdd[int(np.argmin(np.abs(tr.times - t_samp)))]

        spread_std = abs(
            sampling_current(corner(1.0, 5.0, 27.0), False) -
            sampling_current(corner(-1.0, 5.0, 27.0), False))
        spread_dft = abs(
            sampling_current(corner(1.0, 5.0, 27.0), True) -
            sampling_current(corner(-1.0, 5.0, 27.0), True))
        assert spread_dft < spread_std / 2.0


class TestClocksAndLayout:
    def test_clock_phases_ordered(self):
        phi1, phi2, phi3 = comparator_clocks(T, 5.0)
        assert phi1.at(0.15 * T) == 5.0
        assert phi2.at(0.5 * T) == 5.0
        assert phi3.at(0.9 * T) == 5.0
        # non-overlap of phi2/phi3 around the latch gap
        t_gap = 2 * T / 3.0 + 0.5e-9
        assert phi2.at(t_gap) < 0.5
        assert phi3.at(t_gap) < 0.5

    def test_clock_validation(self):
        with pytest.raises(ValueError):
            comparator_clocks(period=1e-9, vdd=5.0)

    def test_regeneration_windows(self):
        w = regeneration_windows(T, cycles=2)
        assert len(w) == 2
        assert w[0][0] < 2 * T / 3.0 + 2e-9 < w[0][1]
        assert w[1][0] > T

    def test_netlist_device_count(self):
        std = build_comparator()
        dft = build_comparator(dft=True)
        assert len(std) - len(dft) == 2  # leak path = 2 devices

    def test_layouts_clean_and_ordered(self):
        std = comparator_layout(dft=False)
        dft = comparator_layout(dft=True)
        assert verify_cell(std) == []
        assert verify_cell(dft) == []

        def track_y(cell, net):
            return min(s.rect.y0 for s in cell.shapes_on("metal1")
                       if s.net == net and s.rect.width > 100)

        # standard routing: vbn1 next to vbn2; DfT: separated
        assert abs(track_y(std, "vbn1") - track_y(std, "vbn2")) == \
            pytest.approx(3.0)
        assert abs(track_y(dft, "vbn1") - track_y(dft, "vbn2")) > 3.0

    def test_global_lines_traverse_cell(self):
        cell = comparator_layout()
        width = cell.bbox().width
        for net in ("phi1", "phi2", "phi3", "vbn1", "vbn2"):
            tracks = [s for s in cell.shapes_on("metal1")
                      if s.net == net and s.rect.width > 0.9 * width]
            assert tracks, f"{net} must traverse the cell"
