"""Tests for defect statistics and the size distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.defects import (DEFAULT_DENSITIES, DefectStatistics,
                           SizeDistribution)


class TestSizeDistribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            SizeDistribution(d_min=2.0, d_max=1.0)
        with pytest.raises(ValueError):
            SizeDistribution(d_min=0.0, d_max=1.0)

    def test_samples_within_bounds(self):
        dist = SizeDistribution(d_min=1.0, d_max=30.0)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, 10000)
        assert samples.min() >= 1.0
        assert samples.max() <= 30.0

    def test_inverse_cube_shape(self):
        """Small defects dominate: P(d < 2) for 1/x^3 on [1, 30] is
        analytically (1 - 2^-2) / (1 - 30^-2) ~ 0.75."""
        dist = SizeDistribution(d_min=1.0, d_max=30.0)
        rng = np.random.default_rng(2)
        samples = dist.sample(rng, 50000)
        frac_small = np.mean(samples < 2.0)
        expected = (1 - 2.0 ** -2) / (1 - 30.0 ** -2)
        assert frac_small == pytest.approx(expected, abs=0.01)

    def test_mean_matches_montecarlo(self):
        dist = SizeDistribution(d_min=1.0, d_max=30.0)
        rng = np.random.default_rng(3)
        samples = dist.sample(rng, 200000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.01)

    @given(st.floats(min_value=0.1, max_value=5.0),
           st.floats(min_value=6.0, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_bounds_property(self, d_min, d_max):
        dist = SizeDistribution(d_min=d_min, d_max=d_max)
        rng = np.random.default_rng(0)
        s = dist.sample(rng, 100)
        assert np.all(s >= d_min - 1e-9)
        assert np.all(s <= d_max + 1e-9)


class TestDefectStatistics:
    def test_default_valid(self):
        stats = DefectStatistics()
        probs = stats.mechanism_probabilities()
        assert sum(probs.values()) == pytest.approx(1.0)
        assert all(p > 0 for p in probs.values())

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            DefectStatistics(densities={"extra_teflon": 1.0})

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            DefectStatistics(densities={"extra_metal1": -1.0})

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            DefectStatistics(densities={"extra_metal1": 0.0})

    def test_extra_metal_dominates(self):
        """Calibration invariant behind 'shorts are >95% of faults'."""
        probs = DefectStatistics().mechanism_probabilities()
        extra = sum(p for name, p in probs.items()
                    if name.startswith("extra_") and name != "extra_contact")
        missing = sum(p for name, p in probs.items()
                      if name.startswith("missing_"))
        assert extra > 0.9
        assert missing < 0.01

    def test_sample_mechanisms_distribution(self):
        stats = DefectStatistics()
        rng = np.random.default_rng(4)
        names = stats.sample_mechanisms(rng, 20000)
        frac_m1 = np.mean(names == "extra_metal1")
        expected = stats.mechanism_probabilities()["extra_metal1"]
        assert frac_m1 == pytest.approx(expected, abs=0.02)

    def test_scaled_override(self):
        stats = DefectStatistics().scaled(extra_metal1=0.0)
        assert "extra_metal1" not in stats.mechanism_probabilities()
        with pytest.raises(ValueError):
            DefectStatistics().scaled(bogus=1.0)
