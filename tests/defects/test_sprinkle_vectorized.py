"""The vectorised sprinkler: deterministic, well-typed, in-bounds.

The inner defect loop was vectorised without touching the RNG draw
order (one batched draw per stream per chunk), so a seed must keep
producing the same defect sequence across runs, batch sizes must not
matter for totals, and every generated value must be a plain Python
float (pool workers pickle defects by the million).
"""

import numpy as np

from repro.defects import sprinkle
from repro.defects.sprinkle import EDGE_MARGIN, iter_sprinkle
from repro.defects.statistics import DefectStatistics
from repro.adc.comparator import comparator_layout


def _key(defect):
    return (defect.mechanism.name, defect.disk.cx, defect.disk.cy,
            defect.disk.radius)


class TestSprinkleDeterminism:
    def test_same_seed_same_stream(self):
        cell = comparator_layout()
        a = sprinkle(cell, 500, seed=42)
        b = sprinkle(cell, 500, seed=42)
        assert [_key(d) for d in a] == [_key(d) for d in b]

    def test_different_seed_differs(self):
        cell = comparator_layout()
        a = sprinkle(cell, 200, seed=1)
        b = sprinkle(cell, 200, seed=2)
        assert [_key(d) for d in a] != [_key(d) for d in b]

    def test_prefix_stable_across_totals(self):
        """Streaming more defects must not perturb the earlier ones
        (chunked draws are per-chunk, so compare chunk-aligned runs)."""
        cell = comparator_layout()
        small = list(iter_sprinkle(cell, 4096, seed=7))
        large = list(iter_sprinkle(cell, 8192, seed=7))
        assert [_key(d) for d in small] == \
            [_key(d) for d in large[:4096]]

    def test_positions_within_expanded_bbox(self):
        cell = comparator_layout()
        box = cell.bbox().expanded(EDGE_MARGIN)
        for d in sprinkle(cell, 300, seed=3):
            assert box.x0 <= d.disk.cx <= box.x1
            assert box.y0 <= d.disk.cy <= box.y1
            assert d.disk.radius > 0

    def test_plain_python_floats(self):
        """Defects are pickled by the million; numpy scalars bloat the
        stream and leak dtype into downstream arithmetic."""
        for d in sprinkle(comparator_layout(), 50, seed=5):
            assert type(d.disk.cx) is float
            assert type(d.disk.cy) is float
            assert type(d.disk.radius) is float

    def test_mechanism_mix_follows_statistics(self):
        stats = DefectStatistics()
        defects = sprinkle(comparator_layout(), 2000, seed=11,
                           stats=stats)
        names = {d.mechanism.name for d in defects}
        assert len(names) > 1  # several mechanisms actually drawn
