"""Tests for defect-statistics calibration."""

import pytest

from repro.adc.comparator import comparator_layout
from repro.defects import DefectStatistics
from repro.defects.calibrate import (CalibrationResult,
                                     MECHANISM_FAULT_TYPE, calibrate,
                                     measure_type_mix)


@pytest.fixture(scope="module")
def cell():
    return comparator_layout()


class TestMeasureTypeMix:
    def test_fractions_sum_to_one(self, cell):
        mix = measure_type_mix(cell, DefectStatistics(),
                               n_defects=8000, seed=1)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["short"] > 0.8

    def test_no_faults_rejected(self, cell):
        # a statistics model whose only mechanism cannot land anywhere
        stats = DefectStatistics(densities={"missing_via": 1.0})
        with pytest.raises(ValueError):
            # vias exist, but almost never get cut by tiny budgets; use
            # a mechanism/size combo that yields nothing
            measure_type_mix(cell, DefectStatistics(
                densities={"pinhole_gate": 1.0},
                pinhole_diameter=0.0001), n_defects=3, seed=2)


class TestMechanismMap:
    def test_every_mechanism_mapped(self):
        assert set(MECHANISM_FAULT_TYPE) == set(
            m for m in MECHANISM_FAULT_TYPE)
        from repro.defects import MECHANISMS
        assert set(MECHANISM_FAULT_TYPE) == set(MECHANISMS)


class TestCalibrate:
    def test_unknown_target_rejected(self, cell):
        with pytest.raises(ValueError):
            calibrate(cell, {"wormhole": 0.5}, n_defects=1000)

    def test_calibration_moves_toward_target(self, cell):
        """Ask for far more junction pinholes than the default gives:
        the calibrated statistics must deliver a much larger share."""
        base = DefectStatistics()
        before = measure_type_mix(cell, base, n_defects=10000, seed=3)
        result = calibrate(cell, {"junction_pinhole": 0.15},
                           base=base, n_defects=10000, rounds=3, seed=3)
        assert isinstance(result, CalibrationResult)
        assert result.achieved["junction_pinhole"] > \
            2 * before["junction_pinhole"]
        assert result.achieved["junction_pinhole"] == \
            pytest.approx(0.15, abs=0.08)

    def test_calibrated_density_changed(self, cell):
        result = calibrate(cell, {"junction_pinhole": 0.10},
                           n_defects=8000, rounds=2, seed=4)
        assert result.statistics.densities["pinhole_junction"] > \
            DefectStatistics().densities["pinhole_junction"]

    def test_shipped_calibration_matches_paper_shape(self, cell):
        """The repo's default statistics already satisfy Table 1's
        shape on the comparator layout."""
        mix = measure_type_mix(cell, DefectStatistics(),
                               n_defects=20000, seed=5)
        assert mix["short"] > 0.9
        assert mix["open"] < 0.05