"""Tests for fault collapsing, Table-1 accounting and the sprinkler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.defects import (Defect, DefectStatistics, FaultClass,
                           JunctionPinholeFault, OpenFault, ShortFault,
                           collapse, mechanism, rescale_magnitudes,
                           sprinkle, type_table)
from repro.layout import LayoutCell, Rect


def short(a, b, r=0.2, layer="metal1"):
    return ShortFault(nets=frozenset({a, b}), layer=layer, resistance=r)


class TestCollapse:
    def test_equivalent_shorts_collapse(self):
        faults = [short("a", "b"), short("b", "a"), short("a", "c")]
        classes = collapse(faults)
        assert len(classes) == 2
        assert classes[0].count == 2  # largest first
        assert classes[0].representative.nets == frozenset({"a", "b"})

    def test_different_resistance_distinct_class(self):
        faults = [short("a", "b", r=0.2), short("a", "b", r=50.0,
                                                layer="poly")]
        assert len(collapse(faults)) == 2

    def test_metal1_metal2_same_class(self):
        """Same node pair, same bridge resistance -> circuit-equivalent
        regardless of which metal layer the material landed on."""
        faults = [short("a", "b", layer="metal1"),
                  short("a", "b", layer="metal2")]
        assert len(collapse(faults)) == 1

    def test_probability(self):
        fc = FaultClass(representative=short("a", "b"), count=5)
        assert fc.probability(50) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            fc.probability(0)

    def test_deterministic_ordering(self):
        faults = [short("a", "b"), short("c", "d")]
        a = collapse(faults)
        b = collapse(list(reversed(faults)))
        assert [fc.representative.collapse_key() for fc in a] == \
               [fc.representative.collapse_key() for fc in b]

    @given(st.lists(st.tuples(st.sampled_from("abcdef"),
                              st.sampled_from("abcdef")),
                    min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_partition_invariant(self, pairs):
        """Collapsing partitions the fault list: counts sum to the
        total and every class is non-empty."""
        faults = [short(a, b) for a, b in pairs if a != b]
        if not faults:
            return
        classes = collapse(faults)
        assert sum(fc.count for fc in classes) == len(faults)
        assert all(fc.count >= 1 for fc in classes)
        keys = [fc.representative.collapse_key() for fc in classes]
        assert len(keys) == len(set(keys))


class TestTypeTable:
    def test_rows_cover_all_types(self):
        classes = collapse([short("a", "b"),
                            JunctionPinholeFault("x", "gnd")])
        rows = type_table(classes)
        assert len(rows) == 8
        by_type = {r.fault_type: r for r in rows}
        assert by_type["short"].faults == 1
        assert by_type["junction_pinhole"].fault_pct == pytest.approx(50.0)
        assert by_type["open"].faults == 0

    def test_percentages_sum_to_100(self):
        classes = collapse([short("a", "b")] * 3 +
                           [JunctionPinholeFault("x", "gnd")])
        rows = type_table(classes)
        assert sum(r.fault_pct for r in rows) == pytest.approx(100.0)
        assert sum(r.class_pct for r in rows) == pytest.approx(100.0)


class TestRescale:
    def test_magnitudes_transplanted(self):
        small = collapse([short("a", "b"), short("c", "d")])
        large = collapse([short("a", "b")] * 100 + [short("c", "d")] * 7)
        rescaled = rescale_magnitudes(small, large)
        counts = {fc.representative.collapse_key(): fc.count
                  for fc in rescaled}
        assert counts[("short", ("a", "b"), 0.2)] == 100
        assert counts[("short", ("c", "d"), 0.2)] == 7

    def test_unseen_class_keeps_count(self):
        small = collapse([short("a", "b"), short("e", "f")])
        large = collapse([short("a", "b")] * 10)
        rescaled = rescale_magnitudes(small, large)
        counts = {fc.representative.collapse_key(): fc.count
                  for fc in rescaled}
        assert counts[("short", ("e", "f"), 0.2)] == 1


class TestSprinkle:
    def cell(self):
        cell = LayoutCell("c")
        cell.add_rect(Rect(0, 0, 100, 50), "metal1", "a")
        return cell

    def test_count_and_determinism(self):
        cell = self.cell()
        a = sprinkle(cell, 500, seed=7)
        b = sprinkle(cell, 500, seed=7)
        assert len(a) == 500
        assert [(d.mechanism.name, d.disk) for d in a] == \
               [(d.mechanism.name, d.disk) for d in b]

    def test_different_seeds_differ(self):
        cell = self.cell()
        a = sprinkle(cell, 100, seed=1)
        b = sprinkle(cell, 100, seed=2)
        assert [(d.disk.cx, d.disk.cy) for d in a] != \
               [(d.disk.cx, d.disk.cy) for d in b]

    def test_locations_within_margin(self):
        cell = self.cell()
        for d in sprinkle(cell, 300, seed=3):
            assert -2.0 <= d.disk.cx <= 102.0
            assert -2.0 <= d.disk.cy <= 52.0

    def test_pinholes_are_point_like(self):
        stats = DefectStatistics(densities={"pinhole_gate": 1.0})
        for d in sprinkle(self.cell(), 50, stats=stats, seed=4):
            assert d.disk.diameter == pytest.approx(stats.pinhole_diameter)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            sprinkle(self.cell(), -1)
