"""Tests for defect-to-fault analysis on hand-built layouts."""

import pytest

from repro.defects import (Defect, ExtraContactFault, GateOxidePinholeFault,
                           JunctionPinholeFault, NewDeviceFault, OpenFault,
                           ShortFault, ShortedDeviceFault,
                           ThickOxidePinholeFault, analyze_defect,
                           analyze_defects, mechanism)
from repro.layout import DeviceInfo, Disk, LayoutCell, Rect


def make_defect(name, cx, cy, diameter):
    return Defect(mechanism=mechanism(name),
                  disk=Disk(cx, cy, diameter / 2.0))


def two_track_cell():
    """Two parallel metal1 tracks 2 um apart plus device anchors."""
    cell = LayoutCell("tracks")
    cell.add_rect(Rect(0, 0, 50, 1.2), "metal1", "a")
    cell.add_rect(Rect(0, 3.2, 50, 4.4), "metal1", "b")
    return cell


class TestExtraMaterial:
    def test_bridge_two_tracks(self):
        cell = two_track_cell()
        d = make_defect("extra_metal1", 25, 2.2, 4.0)
        fault = analyze_defect(cell, d)
        assert isinstance(fault, ShortFault)
        assert fault.nets == frozenset({"a", "b"})
        assert fault.resistance == pytest.approx(0.2)

    def test_small_defect_no_bridge(self):
        cell = two_track_cell()
        d = make_defect("extra_metal1", 25, 2.2, 1.0)
        assert analyze_defect(cell, d) is None

    def test_defect_on_single_net_harmless(self):
        cell = two_track_cell()
        d = make_defect("extra_metal1", 25, 0.6, 1.0)
        assert analyze_defect(cell, d) is None

    def test_wrong_layer_no_fault(self):
        cell = two_track_cell()
        d = make_defect("extra_metal2", 25, 2.2, 4.0)
        assert analyze_defect(cell, d) is None

    def test_poly_short_resistance(self):
        cell = LayoutCell("poly")
        cell.add_rect(Rect(0, 0, 50, 1.0), "poly", "a")
        cell.add_rect(Rect(0, 3, 50, 4.0), "poly", "b")
        fault = analyze_defect(cell, make_defect("extra_poly", 25, 2, 4.0))
        assert isinstance(fault, ShortFault)
        assert fault.resistance == pytest.approx(50.0)

    def test_multi_net_short(self):
        cell = two_track_cell()
        cell.add_rect(Rect(0, 6.4, 50, 7.6), "metal1", "c")
        fault = analyze_defect(cell,
                               make_defect("extra_metal1", 25, 3.8, 9.0))
        assert isinstance(fault, ShortFault)
        assert fault.nets == frozenset({"a", "b", "c"})


class TestNewDevice:
    def cell_with_diff_wire(self):
        cell = LayoutCell("diff")
        cell.add_rect(Rect(0, 0, 30, 2), "ndiff", "n1", device="D1")
        cell.add_rect(Rect(28, 0, 30, 2), "ndiff", "n1", device="D2")
        cell.add_device(DeviceInfo("D1", "resistor", ("n1", "x")))
        cell.add_device(DeviceInfo("D2", "resistor", ("n1", "y")))
        return cell

    def test_extra_poly_across_diff_makes_device(self):
        cell = self.cell_with_diff_wire()
        # sever the long diff wire left of D2's anchor
        fault = analyze_defect(cell, make_defect("extra_poly", 14, 1, 4.0))
        assert isinstance(fault, NewDeviceFault)
        assert fault.net == "n1"
        assert fault.polarity == "n"
        assert fault.gate_net is None

    def test_gate_net_attached_when_poly_touched(self):
        cell = self.cell_with_diff_wire()
        cell.add_rect(Rect(12, -4, 16, -1), "poly", "clk")
        fault = analyze_defect(cell, make_defect("extra_poly", 14, 0, 4.0))
        # disk reaches both the diff wire and the clk poly
        assert isinstance(fault, NewDeviceFault)
        assert fault.gate_net == "clk"


class TestMissingMaterial:
    def open_cell(self):
        """A net with two device anchors joined by one thin wire."""
        cell = LayoutCell("open")
        cell.add_rect(Rect(0, 0, 2, 2), "metal1", "n", device="A")
        cell.add_rect(Rect(28, 0, 30, 2), "metal1", "n", device="B")
        cell.add_rect(Rect(0, 0.4, 30, 1.6), "metal1", "n")
        cell.add_device(DeviceInfo("A", "resistor", ("n", "p")))
        cell.add_device(DeviceInfo("B", "resistor", ("n", "q")))
        return cell

    def test_cut_wire_opens_net(self):
        cell = self.open_cell()
        fault = analyze_defect(cell,
                               make_defect("missing_metal1", 15, 1, 3.0))
        assert isinstance(fault, OpenFault)
        assert fault.net == "n"
        groups = sorted(sorted(g) for g in fault.partition)
        assert groups == [["A:0"], ["B:0"]]

    def test_narrow_defect_no_open(self):
        cell = self.open_cell()
        assert analyze_defect(
            cell, make_defect("missing_metal1", 15, 1, 0.5)) is None

    def test_redundant_routing_survives(self):
        cell = self.open_cell()
        # add a second, redundant wire path
        cell.add_rect(Rect(0, 4, 30, 5.2), "metal1", "n")
        cell.add_rect(Rect(0, 0, 1, 5.2), "metal1", "n")
        cell.add_rect(Rect(29, 0, 30, 5.2), "metal1", "n")
        fault = analyze_defect(cell,
                               make_defect("missing_metal1", 15, 1, 3.0))
        assert fault is None

    def test_missing_contact_opens(self):
        cell = LayoutCell("ct")
        cell.add_rect(Rect(0, 0, 10, 2), "metal1", "n", device="A")
        cell.add_rect(Rect(0, 0, 10, 2), "poly", "n", device="B")
        cell.add_rect(Rect(4, 0.5, 5, 1.5), "contact", "n", purpose="cut")
        cell.add_device(DeviceInfo("A", "resistor", ("n", "p")))
        cell.add_device(DeviceInfo("B", "resistor", ("n", "q")))
        fault = analyze_defect(cell,
                               make_defect("missing_contact", 4.5, 1, 1.5))
        assert isinstance(fault, OpenFault)

    def test_missing_poly_over_gate_shorts_device(self):
        cell = LayoutCell("gate")
        gate_rect = Rect(10, 0, 12, 6)
        cell.add_rect(Rect(10, -2, 12, 8), "poly", "g", device="M1")
        cell.add_rect(gate_rect, "gate", "g", device="M1", purpose="gate")
        cell.add_device(DeviceInfo("M1", "mosfet", ("d", "g", "s", "b"),
                                   polarity="n", gate_rect=gate_rect))
        fault = analyze_defect(cell,
                               make_defect("missing_poly", 11, 3, 3.0))
        assert isinstance(fault, ShortedDeviceFault)
        assert fault.device == "M1"


class TestContactsAndPinholes:
    def stacked_cell(self):
        cell = LayoutCell("stack")
        cell.add_rect(Rect(0, 0, 10, 2), "metal1", "a")
        cell.add_rect(Rect(0, 0, 10, 2), "poly", "b")
        return cell

    def test_extra_contact_shorts_stack(self):
        cell = self.stacked_cell()
        fault = analyze_defect(cell, make_defect("extra_contact", 5, 1, 1))
        assert isinstance(fault, ExtraContactFault)
        assert fault.nets == frozenset({"a", "b"})

    def test_extra_contact_same_net_harmless(self):
        cell = LayoutCell("stack")
        cell.add_rect(Rect(0, 0, 10, 2), "metal1", "a")
        cell.add_rect(Rect(0, 0, 10, 2), "poly", "a")
        assert analyze_defect(
            cell, make_defect("extra_contact", 5, 1, 1)) is None

    def test_thick_oxide_pinhole(self):
        cell = self.stacked_cell()
        fault = analyze_defect(cell, make_defect("pinhole_thick", 5, 1, 1))
        assert isinstance(fault, ThickOxidePinholeFault)
        assert fault.nets == frozenset({"a", "b"})

    def test_gate_pinhole(self):
        cell = LayoutCell("g")
        gate_rect = Rect(0, 0, 2, 6)
        cell.add_rect(gate_rect, "gate", "g", device="M1", purpose="gate")
        cell.add_device(DeviceInfo("M1", "mosfet", ("d", "g", "s", "b"),
                                   polarity="n", gate_rect=gate_rect))
        fault = analyze_defect(cell, make_defect("pinhole_gate", 1, 3, 1))
        assert isinstance(fault, GateOxidePinholeFault)
        assert fault.device == "M1"

    def test_junction_pinhole(self):
        cell = LayoutCell("j")
        cell.add_rect(Rect(0, 0, 5, 2), "ndiff", "out")
        fault = analyze_defect(cell,
                               make_defect("pinhole_junction", 2, 1, 1))
        assert isinstance(fault, JunctionPinholeFault)
        assert fault.net == "out"
        assert fault.bulk_net == "gnd"

    def test_junction_pinhole_to_own_rail_harmless(self):
        cell = LayoutCell("j")
        cell.add_rect(Rect(0, 0, 5, 2), "ndiff", "gnd")
        assert analyze_defect(
            cell, make_defect("pinhole_junction", 2, 1, 1)) is None

    def test_pinhole_missing_geometry_harmless(self):
        cell = self.stacked_cell()
        assert analyze_defect(
            cell, make_defect("pinhole_gate", 5, 1, 1)) is None
        assert analyze_defect(
            cell, make_defect("pinhole_junction", 5, 1, 1)) is None


def test_analyze_defects_filters_harmless():
    cell = two_track_cell()
    defects = [make_defect("extra_metal1", 25, 2.2, 4.0),
               make_defect("extra_metal1", 25, 2.2, 0.5)]
    faults = analyze_defects(cell, defects)
    assert len(faults) == 1
