"""Tests for signature classification, non-cat derivation and the good
signature space."""

import pytest

from repro.defects import ExtraContactFault, OpenFault, ShortFault, collapse
from repro.faultsim import (CurrentMechanism, Measurement,
                            NearMissShortFault, SignatureResult,
                            VoltageSignature, Window, classify_voltage,
                            compile_good_space, derive_noncatastrophic)
from repro.faultsim.goodspace import N_COMPARATORS


def short(a, b):
    return ShortFault(nets=frozenset({a, b}), layer="metal1",
                      resistance=0.2)


class TestClassifyVoltage:
    def test_stuck(self):
        assert classify_voltage(True, True, None, None, 0.0)[0] == \
            VoltageSignature.OUTPUT_STUCK_AT
        assert classify_voltage(False, False, None, None, 0.0)[0] == \
            VoltageSignature.OUTPUT_STUCK_AT

    def test_inverted_is_mixed(self):
        assert classify_voltage(False, True, None, None, 0.0)[0] == \
            VoltageSignature.MIXED

    def test_clean(self):
        sig, _ = classify_voltage(True, False, True, False, 0.0)
        assert sig == VoltageSignature.NONE

    def test_clock_value(self):
        sig, _ = classify_voltage(True, False, True, False, 0.5)
        assert sig == VoltageSignature.CLOCK_VALUE

    def test_positive_offset(self):
        # fires early: below-probe already True
        sig, sign = classify_voltage(True, False, True, True, 0.0)
        assert sig == VoltageSignature.OFFSET
        assert sign == +1

    def test_negative_offset(self):
        # fires late: above-probe still False
        sig, sign = classify_voltage(True, False, False, False, 0.0)
        assert sig == VoltageSignature.OFFSET
        assert sign == -1

    def test_erratic_band_is_mixed(self):
        sig, _ = classify_voltage(True, False, False, True, 0.0)
        assert sig == VoltageSignature.MIXED


class TestNonCatDerivation:
    def test_shorts_and_contacts_evolve(self):
        classes = collapse([
            short("a", "b"), short("a", "b"),
            ExtraContactFault(nets=frozenset({"c", "d"})),
        ])
        derived = derive_noncatastrophic(classes)
        assert len(derived) == 2
        assert all(isinstance(fc.representative, NearMissShortFault)
                   for fc in derived)
        counts = {tuple(sorted(fc.representative.nets)): fc.count
                  for fc in derived}
        assert counts[("a", "b")] == 2

    def test_high_ohmic_faults_not_evolved(self):
        classes = collapse([OpenFault(
            net="x", partition=frozenset([frozenset(["A:0"]),
                                          frozenset(["B:0"])]),
            layer="metal1")])
        assert derive_noncatastrophic(classes) == []

    def test_same_nets_merge(self):
        classes = collapse([short("a", "b"),
                            ExtraContactFault(nets=frozenset({"a", "b"}))])
        derived = derive_noncatastrophic(classes)
        assert len(derived) == 1
        assert derived[0].count == 2


def meas(decision=True, ivdd=(1e-4, 1e-4, 1e-4), iddq=(0., 0., 0.),
         iin=(0., 0., 0.), ivref=(0., 0., 0.), ibias=(0., 0., 0.),
         clock=0.0, resolved=True):
    return Measurement(decision=decision, ivdd=ivdd, iddq=iddq, iin=iin,
                       ivref=ivref, ibias=ibias, clock_deviation=clock,
                       resolved=resolved)


class TestWindow:
    def test_contains(self):
        w = Window(1.0, 2.0)
        assert w.contains(1.5)
        assert not w.contains(2.5)
        assert w.contains(1.0) and w.contains(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Window(2.0, 1.0)

    def test_expanded(self):
        assert Window(1.0, 2.0).expanded(0.5) == Window(0.5, 2.5)


class TestGoodSpace:
    def build(self):
        corners = {
            "typical": {"above": meas(True), "below": meas(False)},
            "slow": {"above": meas(True, ivdd=(0.8e-4,) * 3),
                     "below": meas(False, ivdd=(0.8e-4,) * 3)},
            "fast": {"above": meas(True, ivdd=(1.3e-4,) * 3),
                     "below": meas(False, ivdd=(1.3e-4,) * 3)},
        }
        return compile_good_space(corners)

    def test_nominal_inside(self):
        gs = self.build()
        detected = gs.current_detection({"above": meas(True),
                                         "below": meas(False)})
        assert detected == set()

    def test_large_ivdd_delta_detected(self):
        gs = self.build()
        hot = meas(True, ivdd=(1e-4 + 50e-3, 1e-4, 1e-4))
        detected = gs.current_detection({"above": hot,
                                         "below": meas(False)})
        assert CurrentMechanism.IVDD in detected

    def test_small_delta_masked_by_corner_spread(self):
        """A single-instance deviation smaller than the chip-level
        corner spread escapes — the pre-DfT masking mechanism."""
        gs = self.build()
        # chip window spans 256 * (0.8..1.3)e-4 ~= 20..33 mA; a 2 mA
        # single-instance shift stays inside
        warm = meas(True, ivdd=(1e-4 + 2e-3, 1e-4, 1e-4))
        detected = gs.current_detection({"above": warm,
                                         "below": meas(False)})
        assert CurrentMechanism.IVDD not in detected

    def test_iddq_detection(self):
        gs = self.build()
        leaky = meas(True, iddq=(5e-3, 0.0, 0.0))
        detected = gs.current_detection({"above": leaky,
                                         "below": meas(False)})
        assert CurrentMechanism.IDDQ in detected

    def test_iinput_detection(self):
        gs = self.build()
        loaded = meas(True, iin=(1e-3, 0.0, 0.0))
        detected = gs.current_detection({"above": loaded,
                                         "below": meas(False)})
        assert CurrentMechanism.IINPUT in detected

    def test_unresolved_flags_ivdd(self):
        gs = self.build()
        detected = gs.current_detection({
            "above": meas(resolved=False), "below": meas(False)})
        assert CurrentMechanism.IVDD in detected

    def test_missing_typical_corner_rejected(self):
        with pytest.raises(ValueError):
            compile_good_space({"slow": {"above": meas(),
                                         "below": meas(False)}})


class TestDetectabilityRank:
    def test_ordering(self):
        def result(voltage, mechs):
            return SignatureResult(voltage=voltage, offset_sign=0,
                                   mechanisms=frozenset(mechs),
                                   measurements={})

        hard = result(VoltageSignature.NONE, set())
        medium = result(VoltageSignature.CLOCK_VALUE,
                        {CurrentMechanism.IDDQ})
        easy = result(VoltageSignature.OUTPUT_STUCK_AT,
                      {CurrentMechanism.IVDD, CurrentMechanism.IDDQ})
        ranked = sorted([easy, hard, medium],
                        key=lambda r: r.detectability_rank())
        assert ranked[0] is hard
        assert ranked[-1] is easy
