"""Tests for the FaultEngine protocol: one contract, every engine."""

import pytest

from repro.defects import ShortFault
from repro.defects.collapse import FaultClass
from repro.faultsim import (ComparatorFaultEngine, EngineConfig,
                            FaultEngine)
from repro.faultsim.macro_engines import (BiasgenFaultEngine,
                                          ClockgenFaultEngine,
                                          DecoderFaultEngine,
                                          LadderFaultEngine)
from repro.macrotest.coverage import DetectionRecord


def short_class(a, b, r=0.2, count=4):
    fault = ShortFault(nets=frozenset({a, b}), layer="metal1",
                       resistance=r)
    return FaultClass(representative=fault, count=count)


class TestProtocolConformance:
    def test_every_engine_satisfies_protocol(self):
        engines = [
            ComparatorFaultEngine(EngineConfig()),
            LadderFaultEngine(ivdd_window_halfwidth=20e-3),
            ClockgenFaultEngine(),
            BiasgenFaultEngine(ivdd_window_halfwidth=20e-3),
            DecoderFaultEngine(),
        ]
        for engine in engines:
            assert isinstance(engine, FaultEngine)

    def test_non_engine_rejected(self):
        assert not isinstance(object(), FaultEngine)


class TestComparatorContract:
    @pytest.fixture(scope="class")
    def engine(self):
        return ComparatorFaultEngine(EngineConfig())

    def test_simulate_class_returns_detection_record(self, engine):
        fc = short_class("lp", "ln")
        record = engine.simulate_class(fc)
        assert isinstance(record, DetectionRecord)
        assert record.count == fc.count
        assert record.fault_type == fc.fault_type
        # an output short is unmissable by the missing-code test
        assert record.voltage_detected

    def test_record_consistent_with_signature(self, engine):
        fc = short_class("phi1", "phi2")
        record = engine.simulate_class(fc)
        res = engine.simulate_class_signature(fc)
        assert record.voltage_signature == res.signature.voltage
        assert record.mechanisms == res.signature.mechanisms

    def test_legacy_shim_warns(self, engine):
        fc = short_class("lp", "ln")
        with pytest.warns(DeprecationWarning):
            legacy = engine.simulate_class_legacy(fc)
        assert legacy == engine.simulate_class_signature(fc)
