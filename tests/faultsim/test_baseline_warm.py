"""Adopted baselines reproduce cold-start verdicts on every engine.

The incremental campaign computes each macro's fault-free baseline
once, stores it, and adopts it into warm engines on later runs.  The
scheme is only sound if a warm engine seeded with an adopted baseline
emits *exactly* the DetectionRecords a cold engine computes from
scratch — these tests pin that per macro, plus the refusal paths (a
blob that does not fit must never be adopted).
"""

import pytest

from repro.defects import ShortFault
from repro.defects.collapse import FaultClass
from repro.faultsim import ComparatorFaultEngine, EngineConfig
from repro.faultsim.baseline import MacroBaseline
from repro.faultsim.macro_engines import (BiasgenFaultEngine,
                                          ClockgenFaultEngine,
                                          DecoderFaultEngine,
                                          LadderFaultEngine)


def short_class(a, b, layer="metal1", r=0.2, count=5):
    fault = ShortFault(nets=frozenset({a, b}), layer=layer,
                       resistance=r)
    return FaultClass(representative=fault, count=count)


def comparator_engine(**knobs):
    return ComparatorFaultEngine(EngineConfig(**knobs))


#: macro -> (engine factory taking warm_start/drop, two fault classes:
#: one clearly detected, one marginal/escaping)
ENGINES = {
    "comparator": (comparator_engine,
                   [("lp", "ln"), ("vbn1", "vbn2")]),
    "ladder": (lambda **kw: LadderFaultEngine(
                   ivdd_window_halfwidth=20e-3, **kw),
               [("tap4", "gnd"), ("tap4", "tap5")]),
    "clockgen": (ClockgenFaultEngine,
                 [("phi1", "gnd"), ("phi1", "phi3")]),
    "biasgen": (lambda **kw: BiasgenFaultEngine(
                    ivdd_window_halfwidth=20e-3, **kw),
                [("vbn1", "gnd"), ("vbn1", "vbn2")]),
}


@pytest.mark.parametrize("macro", sorted(ENGINES))
def test_warm_adopted_equals_cold(macro):
    build, pairs = ENGINES[macro]
    cold = build(warm_start=False, drop=False)
    cold_records = [cold.simulate_class(short_class(a, b))
                    for a, b in pairs]
    blob = cold.export_baseline().to_dict()  # the store wire format

    warm = build(warm_start=True, drop=True)
    assert warm.adopt_baseline(blob), macro
    assert warm.baseline_source == "adopted"
    warm_records = [warm.simulate_class(short_class(a, b))
                    for a, b in pairs]
    assert warm_records == cold_records


class TestAdoptRefusal:
    def test_foreign_payload_refused(self):
        blob = MacroBaseline(macro="ladder",
                             payload={"nope": 1}).to_dict()
        engine = ClockgenFaultEngine()
        assert engine.adopt_baseline(blob) is False
        assert engine.baseline_source == "computed"

    def test_stale_version_refused(self):
        blob = MacroBaseline(macro="clockgen",
                             payload={"good": {}}).to_dict()
        blob["baseline_version"] = -1
        assert ClockgenFaultEngine().adopt_baseline(blob) is False

    def test_comparator_refuses_corner_mismatch(self):
        cold = comparator_engine(warm_start=False)
        blob = cold.export_baseline().to_dict()
        corners = blob["payload"]["corners"]
        corners.pop(next(iter(corners)))
        assert comparator_engine().adopt_baseline(blob) is False


def test_decoder_records_detected_by():
    engine = DecoderFaultEngine(n_bridge_sample=20, n_stuck_sample=10,
                                seed=3)
    bridges, stucks = engine.run()
    assert any(r.detected for r in bridges + stucks)
    for rec in bridges + stucks:
        if rec.detected:
            assert rec.detected_by in ("current", "voltage")
        else:
            assert rec.detected_by is None
