"""Tests for circuit-level fault models and injection."""

import pytest

from repro.adc.process import typical
from repro.circuit import (Circuit, Mosfet, Resistor, VoltageSource,
                           operating_point)
from repro.defects import (ExtraContactFault, GateOxidePinholeFault,
                           JunctionPinholeFault, NewDeviceFault,
                           OpenFault, ShortFault, ShortedDeviceFault,
                           ThickOxidePinholeFault)
from repro.faultsim import (FaultModel, NearMissShortFault, fault_models,
                            inject, near_miss_model)


def simple_circuit():
    p = typical()
    c = Circuit("ut")
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VIN", "in", "gnd", 2.0))
    c.add(Resistor("R1", "vdd", "out", 10e3))
    c.add(Mosfet("M1", "out", "in", "gnd", "gnd", p.nmos, w=4e-6,
                 l=1e-6))
    c.add(Resistor("R2", "out", "load", 1e3))
    c.add(Resistor("R3", "load", "gnd", 1e3))
    return c


def short(a, b, r=0.2):
    return ShortFault(nets=frozenset({a, b}), layer="metal1",
                      resistance=r)


class TestBridges:
    def test_short_model_adds_resistor(self):
        models = fault_models(short("out", "gnd"))
        assert len(models) == 1
        faulty = inject(simple_circuit(), models[0])
        assert len(faulty) == len(simple_circuit()) + 1
        op = operating_point(faulty)
        assert op.voltage("out") < 0.01

    def test_injection_preserves_original(self):
        c = simple_circuit()
        n = len(c)
        inject(c, fault_models(short("out", "gnd"))[0])
        assert len(c) == n

    def test_multi_net_short_chain(self):
        f = ShortFault(nets=frozenset({"out", "load", "gnd"}),
                       layer="metal1", resistance=0.2)
        faulty = inject(simple_circuit(), fault_models(f)[0])
        op = operating_point(faulty)
        assert op.voltage("out") == pytest.approx(op.voltage("load"),
                                                  abs=0.01)

    def test_extra_contact_resistance(self):
        f = ExtraContactFault(nets=frozenset({"out", "gnd"}))
        faulty = inject(simple_circuit(), fault_models(f)[0])
        bridges = [el for el in faulty.elements
                   if el.name.startswith("FLT_")]
        assert bridges[0].resistance == pytest.approx(2.0)

    def test_pinhole_resistances(self):
        for f in (ThickOxidePinholeFault(nets=frozenset({"out", "gnd"})),
                  JunctionPinholeFault(net="out", bulk_net="gnd")):
            faulty = inject(simple_circuit(), fault_models(f)[0])
            bridges = [el for el in faulty.elements
                       if el.name.startswith("FLT_")]
            assert bridges[0].resistance == pytest.approx(2000.0)

    def test_near_miss_model(self):
        f = NearMissShortFault(nets=frozenset({"out", "gnd"}))
        faulty = inject(simple_circuit(), near_miss_model(f))
        rs = [el for el in faulty.elements
              if el.name.startswith("FLT_nm_r")]
        cs = [el for el in faulty.elements
              if el.name.startswith("FLT_nm_c")]
        assert rs[0].resistance == pytest.approx(500.0)
        assert cs[0].capacitance == pytest.approx(1e-15)


class TestGatePinhole:
    def test_three_variants(self):
        models = fault_models(GateOxidePinholeFault(device="M1"))
        assert len(models) == 3
        names = {m.name for m in models}
        assert any("source" in n for n in names)
        assert any("drain" in n for n in names)
        assert any("channel" in n for n in names)

    def test_gate_to_source_pulls_gate(self):
        models = fault_models(GateOxidePinholeFault(device="M1"))
        source_variant = next(m for m in models if "source" in m.name)
        faulty = inject(simple_circuit(), source_variant)
        op = operating_point(faulty)
        # the 2 kohm to the grounded source loads the driven gate
        # through nothing (VIN is stiff), but the bridge itself exists
        bridge = faulty.element("FLT_gp_M1_s")
        assert bridge.resistance == pytest.approx(2000.0)

    def test_channel_variant_creates_midpoint(self):
        models = fault_models(GateOxidePinholeFault(device="M1"))
        channel = next(m for m in models if "channel" in m.name)
        faulty = inject(simple_circuit(), channel)
        assert "M1__pinhole_ch" in faulty.nodes()


class TestShortedDevice:
    def test_drain_source_resistor(self):
        f = ShortedDeviceFault(device="M1")
        faulty = inject(simple_circuit(), fault_models(f)[0])
        op = operating_point(faulty)
        # M1 off (vin=2.0 > vth, actually on; force off)
        faulty.element("VIN").value = 0.0
        op = operating_point(faulty)
        # with the channel bridged, "out" is pulled low despite M1 off
        assert op.voltage("out") < 3.0


class TestOpens:
    def partition(self):
        return frozenset([frozenset(["M1:0", "R1:1"]),
                          frozenset(["R2:0"])])

    def test_open_splits_net(self):
        f = OpenFault(net="out", partition=self.partition(),
                      layer="metal1")
        faulty = inject(simple_circuit(), fault_models(f)[0])
        # R2's terminal moved to a split node with a leak to ground
        assert faulty.element("R2").nodes[0].startswith("out__open")
        assert faulty.element("M1").nodes[0] == "out"
        op = operating_point(faulty)
        assert op.voltage("load") < 0.01  # load side floats to ground

    def test_port_island_keeps_name(self):
        partition = frozenset([frozenset(["port:out", "M1:0"]),
                               frozenset(["R1:1", "R2:0"])])
        f = OpenFault(net="out", partition=partition, layer="metal1")
        faulty = inject(simple_circuit(), fault_models(f)[0])
        assert faulty.element("M1").nodes[0] == "out"
        assert faulty.element("R1").nodes[1].startswith("out__open")

    def test_missing_device_tolerated(self):
        partition = frozenset([frozenset(["M1:0"]),
                               frozenset(["GHOST:1"])])
        f = OpenFault(net="out", partition=partition, layer="metal1")
        faulty = inject(simple_circuit(), fault_models(f)[0])
        operating_point(faulty)  # must not raise


class TestNewDevice:
    def test_inserts_transistor(self):
        partition = frozenset([frozenset(["R2:1"]),
                               frozenset(["R3:0"])])
        f = NewDeviceFault(net="load", gate_net="in",
                           partition=partition, polarity="n")
        faulty = inject(simple_circuit(), fault_models(f)[0])
        new = [el for el in faulty.elements
               if el.name.startswith("FLT_nd_")]
        assert len(new) == 1
        assert isinstance(new[0], Mosfet)

    def test_floating_gate_leaked(self):
        partition = frozenset([frozenset(["R2:1"]),
                               frozenset(["R3:0"])])
        f = NewDeviceFault(net="load", gate_net=None,
                           partition=partition, polarity="n")
        faulty = inject(simple_circuit(), fault_models(f)[0])
        assert "load__ndgate" in faulty.nodes()
        op = operating_point(faulty)
        assert op.voltage("load__ndgate") == pytest.approx(0.0, abs=1e-6)
