"""Integration-ish tests for the fault-simulation engines.

These run real transients, so each uses a single representative fault.
"""

import pytest

from repro.defects import ShortFault, collapse
from repro.defects.collapse import FaultClass
from repro.faultsim import (ComparatorFaultEngine, CurrentMechanism,
                            EngineConfig, VoltageSignature)
from repro.faultsim.macro_engines import (ClockgenFaultEngine,
                                          DecoderFaultEngine,
                                          LadderFaultEngine,
                                          translate_fault)


def short_class(a, b, layer="metal1", r=0.2, count=5):
    fault = ShortFault(nets=frozenset({a, b}), layer=layer, resistance=r)
    return FaultClass(representative=fault, count=count)


@pytest.fixture(scope="module")
def engine():
    return ComparatorFaultEngine(EngineConfig())


class TestComparatorEngine:
    def test_good_space_nominal_clean(self, engine):
        gs = engine.good_space()
        detected = gs.current_detection(gs.typical)
        assert detected == set()

    def test_output_short_is_stuck(self, engine):
        result = engine.simulate_class_signature(short_class("lp", "ln"))
        assert result.signature.voltage == \
            VoltageSignature.OUTPUT_STUCK_AT

    def test_clock_short_flags_iddq(self, engine):
        result = engine.simulate_class_signature(
            short_class("phi1", "phi2"))
        assert CurrentMechanism.IDDQ in result.signature.mechanisms

    def test_bias_bias_short_escapes(self, engine):
        """The paper's hard case: the two marginally different bias
        lines shorted together change almost nothing."""
        result = engine.simulate_class_signature(
            short_class("vbn1", "vbn2"))
        assert result.signature.voltage in (VoltageSignature.NONE,
                                            VoltageSignature.CLOCK_VALUE)
        assert CurrentMechanism.IVDD not in result.signature.mechanisms

    def test_vdd_gnd_short_current_detected(self, engine):
        result = engine.simulate_class_signature(
            short_class("vdd", "gnd"))
        assert CurrentMechanism.IVDD in result.signature.mechanisms


class TestTranslateFault:
    def test_nets_and_devices_renamed(self):
        fault = ShortFault(nets=frozenset({"tap0", "tap3"}),
                           layer="metal1", resistance=0.2)
        out = translate_fault(fault, {"tap0": "tap128",
                                      "tap3": "tap131"}, {})
        assert out.nets == frozenset({"tap128", "tap131"})

    def test_partition_labels_renamed(self):
        from repro.defects import OpenFault
        fault = OpenFault(net="tap1", partition=frozenset([
            frozenset(["RF0:1"]), frozenset(["RF1:0"])]),
            layer="metal1")
        out = translate_fault(fault, {"tap1": "tap129"},
                              {"RF0": "RF128", "RF1": "RF129"})
        assert out.net == "tap129"
        labels = {l for g in out.partition for l in g}
        assert labels == {"RF128:1", "RF129:0"}


class TestLadderEngine:
    @pytest.fixture(scope="class")
    def ladder_engine(self):
        return LadderFaultEngine(ivdd_window_halfwidth=20e-3)

    def test_rail_short_current_detected(self, ladder_engine):
        rec = ladder_engine.simulate_class(short_class("tap4", "gnd"))
        assert CurrentMechanism.IINPUT in rec.mechanisms

    def test_adjacent_tap_short_voltage_detected(self, ladder_engine):
        rec = ladder_engine.simulate_class(short_class("tap4", "tap5"))
        assert rec.voltage_detected

    def test_vdd_short_flags_supply(self, ladder_engine):
        rec = ladder_engine.simulate_class(short_class("tap8", "vdd"))
        assert CurrentMechanism.IVDD in rec.mechanisms or \
            CurrentMechanism.IINPUT in rec.mechanisms


class TestClockgenEngine:
    @pytest.fixture(scope="class")
    def clk_engine(self):
        return ClockgenFaultEngine()

    def test_phase_line_short_iddq(self, clk_engine):
        rec = clk_engine.simulate_class(short_class("phi1", "gnd"))
        assert CurrentMechanism.IDDQ in rec.mechanisms
        assert rec.voltage_detected  # dead phase -> missing codes

    def test_phase_phase_short(self, clk_engine):
        rec = clk_engine.simulate_class(short_class("phi1", "phi3"))
        assert CurrentMechanism.IDDQ in rec.mechanisms


class TestDecoderEngine:
    def test_small_sample_runs(self):
        engine = DecoderFaultEngine(n_bridge_sample=30,
                                    n_stuck_sample=20, seed=3)
        bridges, stucks = engine.run()
        assert len(bridges) == 30
        assert len(stucks) == 20
        # IDDQ catches essentially every sampled bridge
        iddq_frac = sum(1 for r in bridges
                        if CurrentMechanism.IDDQ in r.mechanisms) / 30
        assert iddq_frac > 0.9
        # a decent share of stuck-ats is logic-detectable
        logic_frac = sum(1 for r in stucks if r.voltage_detected) / 20
        assert logic_frac > 0.5
