"""Additional engine-behaviour tests (worst-case selection, near-miss
classes, measurement sanity)."""

import pytest

from repro.defects import GateOxidePinholeFault, ShortFault
from repro.defects.collapse import FaultClass
from repro.faultsim import (ComparatorFaultEngine, EngineConfig,
                            NearMissShortFault, VoltageSignature)


@pytest.fixture(scope="module")
def engine():
    return ComparatorFaultEngine(EngineConfig())


class TestNearMissClasses:
    def test_near_miss_clock_bridge(self, engine):
        """A 500-ohm bridge between clock lines is weaker than the
        0.2-ohm catastrophic version: the comparator may keep working,
        but the clock generator still sees the load."""
        near = FaultClass(representative=NearMissShortFault(
            nets=frozenset({"phi1", "phi2"})), count=3)
        result = engine.simulate_class_signature(near)
        assert result.variant.startswith("near_miss")
        from repro.faultsim import CurrentMechanism
        assert CurrentMechanism.IDDQ in result.signature.mechanisms

    def test_near_miss_twin_bias_invisible(self, engine):
        near = FaultClass(representative=NearMissShortFault(
            nets=frozenset({"vbn1", "vbn2"})), count=3)
        result = engine.simulate_class_signature(near)
        assert result.signature.voltage in (
            VoltageSignature.NONE, VoltageSignature.CLOCK_VALUE)


class TestWorstCaseSelection:
    def test_gate_pinhole_picks_least_detectable(self, engine):
        """All three pinhole variants are simulated; the chosen one
        must rank hardest to detect among them."""
        fc = FaultClass(representative=GateOxidePinholeFault(
            device="MS1"), count=1)
        chosen = engine.simulate_class_signature(fc)
        from repro.faultsim.models import fault_models
        variants = fault_models(fc.representative)
        ranks = []
        for v in variants:
            sig = engine.simulate_model(v)
            ranks.append((sig.detectability_rank(), v.name))
        best_rank = min(r for r, _ in ranks)
        assert chosen.signature.detectability_rank() == best_rank


class TestMeasurementSanity:
    def test_good_measurements_physical(self, engine):
        gs = engine.good_space()
        for pol in ("above", "below"):
            m = gs.typical[pol]
            assert m.resolved
            # class-A bias currents: tens to hundreds of uA
            assert 0 < m.ivdd[0] < 1e-3
            assert 0 < m.ivdd[1] < 1e-3
            # clock-line loading nearly zero when fault free
            assert all(i < 50e-6 for i in m.iddq)
            assert m.clock_deviation < 0.15

    def test_decisions_differ_by_polarity(self, engine):
        gs = engine.good_space()
        assert gs.typical["above"].decision is True
        assert gs.typical["below"].decision is False