"""Tests for the stable signature-vector feature contract."""

import numpy as np

from repro.core.serialize import record_from_dict, record_to_dict
from repro.faultsim import (CurrentMechanism, PHASES, POLARITIES,
                            SIGNATURE_QUANTITIES, VoltageSignature,
                            signature_feature_names, signature_vector)
from repro.macrotest import DetectionRecord

NAMES = signature_feature_names()


class TestFeatureOrdering:
    def test_layout_is_the_documented_contract(self):
        assert NAMES[0] == "voltage:missing_codes"
        assert NAMES[1:5] == ("voltage:output_stuck_at",
                              "voltage:offset", "voltage:mixed",
                              "voltage:clock_value")
        assert NAMES[5:8] == ("mechanism:ivdd", "mechanism:iddq",
                              "mechanism:iinput")
        assert len(NAMES) == 8 + len(SIGNATURE_QUANTITIES) * \
            len(PHASES) * len(POLARITIES)

    def test_current_block_is_quantity_major(self):
        expected = tuple(f"current:{q}:{phase}:{pol}"
                         for q in SIGNATURE_QUANTITIES
                         for phase in PHASES
                         for pol in POLARITIES)
        assert NAMES[8:] == expected

    def test_no_deviation_has_no_feature(self):
        # all-zeros is the "inside good space" sentinel, so NONE must
        # not occupy a one-hot slot
        assert f"voltage:{VoltageSignature.NONE.value}" not in NAMES

    def test_names_are_unique(self):
        assert len(set(NAMES)) == len(NAMES)


class TestVectorization:
    def test_undetected_is_all_zeros(self):
        vec = signature_vector(False, None, frozenset(), frozenset())
        assert not vec.any()
        assert vec.shape == (len(NAMES),)

    def test_none_signature_is_all_zeros(self):
        vec = signature_vector(False, VoltageSignature.NONE,
                               frozenset(), frozenset())
        assert not vec.any()

    def test_features_land_on_their_named_slots(self):
        vec = signature_vector(
            True, VoltageSignature.OFFSET,
            frozenset({CurrentMechanism.IDDQ}),
            frozenset({("ivdd", "sampling", "above"),
                       ("ivref", "latching", "below")}))
        on = {NAMES[i] for i in np.flatnonzero(vec)}
        assert on == {"voltage:missing_codes", "voltage:offset",
                      "mechanism:iddq",
                      "current:ivdd:sampling:above",
                      "current:ivref:latching:below"}

    def test_bespoke_violated_keys_ignored(self):
        vec = signature_vector(
            False, None, frozenset(),
            frozenset({("missing_codes", "*", "*")}))
        assert not vec.any()

    def test_binary_valued(self):
        vec = signature_vector(
            True, VoltageSignature.MIXED,
            frozenset(CurrentMechanism),
            frozenset((q, p, s) for q in SIGNATURE_QUANTITIES
                      for p in PHASES for s in POLARITIES))
        assert set(np.unique(vec)) <= {0.0, 1.0}
        assert vec.sum() == 1 + 1 + 3 + len(NAMES) - 8


class TestDetectionRecordDelegation:
    def test_record_matches_free_function(self):
        rec = DetectionRecord(
            count=4, voltage_detected=True,
            mechanisms=frozenset({CurrentMechanism.IVDD}),
            voltage_signature=VoltageSignature.OUTPUT_STUCK_AT,
            violated_keys=frozenset({("iddq", "amplification",
                                      "below")}))
        expected = signature_vector(True,
                                    VoltageSignature.OUTPUT_STUCK_AT,
                                    rec.mechanisms, rec.violated_keys)
        assert np.array_equal(rec.signature_vector(), expected)

    def test_serialize_roundtrip_preserves_vector(self):
        rec = DetectionRecord(
            count=9, voltage_detected=True,
            mechanisms=frozenset({CurrentMechanism.IDDQ,
                                  CurrentMechanism.IINPUT}),
            voltage_signature=VoltageSignature.CLOCK_VALUE,
            fault_type="open",
            violated_keys=frozenset({("iin", "sampling", "above"),
                                     ("missing_codes", "*", "*")}),
            detected_by="current")
        restored = record_from_dict(record_to_dict(rec))
        assert restored == rec
        assert np.array_equal(restored.signature_vector(),
                              rec.signature_vector())

    def test_vector_stable_across_reencoding(self):
        # encoding twice (the store round-trips payloads) cannot move
        # features: the ordering is positional, not insertion-order
        rec = DetectionRecord(
            count=1, voltage_detected=False,
            mechanisms=frozenset({CurrentMechanism.IVDD}),
            violated_keys=frozenset({("ivdd", "latching", "above")}))
        twice = record_from_dict(
            record_to_dict(record_from_dict(record_to_dict(rec))))
        assert np.array_equal(twice.signature_vector(),
                              rec.signature_vector())
