"""Tests for the high-level (structural) signature estimator."""

import pytest

from repro.defects import (GateOxidePinholeFault, OpenFault, ShortFault,
                           ShortedDeviceFault)
from repro.faultsim import (CurrentMechanism, Measurement,
                            NearMissShortFault, SignatureResult,
                            VoltageSignature)
from repro.faultsim.highlevel import (AgreementReport,
                                      compare_to_circuit_level,
                                      estimate_signature)


def short(a, b):
    return ShortFault(nets=frozenset({a, b}), layer="metal1",
                      resistance=0.2)


class TestRules:
    def test_clock_short_gets_iddq(self):
        est = estimate_signature(short("phi1", "gnd"))
        assert CurrentMechanism.IDDQ in est.mechanisms

    def test_vdd_gnd_short_gets_ivdd(self):
        est = estimate_signature(short("vdd", "gnd"))
        assert CurrentMechanism.IVDD in est.mechanisms

    def test_twin_bias_short_estimated_benign(self):
        est = estimate_signature(short("vbn1", "vbn2"))
        assert est.voltage == VoltageSignature.NONE

    def test_output_short_estimated_stuck(self):
        est = estimate_signature(short("lp", "ln"))
        assert est.voltage == VoltageSignature.OUTPUT_STUCK_AT

    def test_gate_pinhole_estimated_stuck(self):
        est = estimate_signature(GateOxidePinholeFault(device="M1"))
        assert est.voltage == VoltageSignature.OUTPUT_STUCK_AT

    def test_near_miss_clock_estimated_clock_value(self):
        est = estimate_signature(
            NearMissShortFault(nets=frozenset({"phi1", "phi2"})))
        assert est.voltage == VoltageSignature.CLOCK_VALUE


class TestAgreement:
    def make_truth(self, voltage, mechs=()):
        z = (0.0, 0.0, 0.0)
        m = Measurement(decision=True, ivdd=z, iddq=z, iin=z, ivref=z,
                        ibias=z, clock_deviation=0.0)
        return SignatureResult(voltage=voltage, offset_sign=0,
                               mechanisms=frozenset(mechs),
                               measurements={"above": m, "below": m})

    def test_perfect_agreement(self):
        pairs = [(short("lp", "ln"),
                  self.make_truth(VoltageSignature.OUTPUT_STUCK_AT))]
        report = compare_to_circuit_level(pairs)
        assert report.voltage_accuracy == 1.0

    def test_disagreement_counted(self):
        pairs = [(short("lp", "ln"),
                  self.make_truth(VoltageSignature.NONE))]
        report = compare_to_circuit_level(pairs)
        assert report.voltage_accuracy == 0.0
        assert report.confusion[("output_stuck_at", "no_deviation")] == 1

    def test_empty_is_vacuously_perfect(self):
        report = compare_to_circuit_level([])
        assert report.voltage_accuracy == 1.0
        assert report.current_accuracy == 1.0


class TestAgainstRealEngine:
    def test_estimator_imperfect_on_real_faults(self):
        """The paper's criticism quantified: structural guessing gets a
        meaningful share of signatures wrong."""
        from repro.faultsim import ComparatorFaultEngine
        from repro.defects.collapse import FaultClass

        engine = ComparatorFaultEngine()
        trials = [short("lp", "ln"), short("vbn1", "vbn2"),
                  short("phi1", "vbn2"), short("gnd", "vbn1"),
                  short("phi3", "vdd")]
        pairs = []
        for fault in trials:
            res = engine.simulate_class_signature(
                FaultClass(representative=fault, count=1))
            pairs.append((fault, res.signature))
        report = compare_to_circuit_level(pairs)
        # the estimator is useful (beats chance) ...
        assert report.voltage_accuracy >= 0.4
        # ... but not a substitute for circuit-level simulation
        assert report.voltage_accuracy < 1.0 or \
            report.current_accuracy < 1.0
