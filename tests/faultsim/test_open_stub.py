"""Regression test: opens that strip every device off a net must keep
the net measurable (found by the DfT benchmark run)."""

import pytest

from repro.adc.process import typical
from repro.circuit import (Circuit, Resistor, VoltageSource,
                           operating_point)
from repro.defects import OpenFault
from repro.faultsim import fault_models, inject


def test_port_only_island_keeps_node_alive():
    c = Circuit()
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(Resistor("RB2", "vdd", "vbn2", 70e3))
    c.add(Resistor("RL", "vbn2", "gnd", 30e3))
    # partition: the port anchor alone on one island, both resistor
    # terminals on others -> every element leaves the net
    partition = frozenset([frozenset(["port:vbn2"]),
                           frozenset(["RB2:1"]),
                           frozenset(["RL:0"])])
    fault = OpenFault(net="vbn2", partition=partition, layer="metal1")
    faulty = inject(c, fault_models(fault)[0])
    op = operating_point(faulty)
    # the stub floats to ground through its leak; it must be measurable
    assert op.voltage("vbn2") == pytest.approx(0.0, abs=1e-6)


def test_port_island_preferred_even_when_smaller():
    """The circuit edge measures the port side, so the port island
    keeps the net name even when a device island is larger."""
    c = Circuit()
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(Resistor("RB2", "vdd", "vbn2", 70e3))
    c.add(Resistor("RL", "vbn2", "gnd", 30e3))
    partition = frozenset([frozenset(["RB2:1", "RL:0"]),
                           frozenset(["port:vbn2"])])
    fault = OpenFault(net="vbn2", partition=partition, layer="metal1")
    faulty = inject(c, fault_models(fault)[0])
    op = operating_point(faulty)
    # devices moved together to a split island (divider intact there),
    # while the measured port stub floats to ground
    assert op.voltage("vbn2") == pytest.approx(0.0, abs=1e-6)
    split = [n for n in faulty.nodes() if n.startswith("vbn2__open")]
    assert len(split) == 1
    assert op.voltage(split[0]) == pytest.approx(1.5, abs=0.01)


def test_largest_island_kept_without_ports():
    c = Circuit()
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(Resistor("RB2", "vdd", "vbn2", 70e3))
    c.add(Resistor("RL", "vbn2", "gnd", 30e3))
    c.add(Resistor("RX", "vbn2", "gnd", 1e6))
    partition = frozenset([frozenset(["RB2:1", "RL:0"]),
                           frozenset(["RX:0"])])
    fault = OpenFault(net="vbn2", partition=partition, layer="metal1")
    faulty = inject(c, fault_models(fault)[0])
    # the larger island keeps the name: RB2/RL stay on vbn2
    assert faulty.element("RB2").nodes[1] == "vbn2"
    assert faulty.element("RX").nodes[0].startswith("vbn2__open")
