"""Detection-driven dropping never changes a verdict.

``drop=True`` lets an engine stop a fault class's stimulus schedule
early (skip small offset probes, reuse memoised propagations, skip
dead-band comparator-bank re-runs).  Every skip is justified by a
proof that the skipped work cannot move the verdict, so records must
be equal with the knob on and off — including the paper's marginal
cases that sit right at the decision boundaries.
"""

import pytest

from repro.defects import ShortFault
from repro.defects.collapse import FaultClass
from repro.faultsim import ComparatorFaultEngine, EngineConfig
from repro.faultsim.macro_engines import (BiasgenFaultEngine,
                                          ClockgenFaultEngine,
                                          LadderFaultEngine)


def short_class(a, b, layer="metal1", r=0.2, count=5):
    fault = ShortFault(nets=frozenset({a, b}), layer=layer,
                       resistance=r)
    return FaultClass(representative=fault, count=count)


CASES = {
    "comparator": (lambda **kw: ComparatorFaultEngine(
                       EngineConfig(**kw)),
                   [("lp", "ln"), ("vbn1", "vbn2"), ("phi1", "phi2")]),
    "ladder": (lambda **kw: LadderFaultEngine(
                   ivdd_window_halfwidth=20e-3, **kw),
               [("tap4", "gnd"), ("tap4", "tap5")]),
    "clockgen": (ClockgenFaultEngine,
                 [("phi1", "gnd"), ("phi1", "phi3")]),
    # vbn1/vbn2 is the marginal dead-band case: the two bias lines are
    # nearly equal already, so the shift hovers at the drop threshold
    "biasgen": (lambda **kw: BiasgenFaultEngine(
                    ivdd_window_halfwidth=20e-3, **kw),
                [("vbn1", "vbn2"), ("vbn1", "gnd")]),
}


@pytest.mark.parametrize("macro", sorted(CASES))
def test_drop_invariant(macro):
    build, pairs = CASES[macro]
    full = build(warm_start=False, drop=False)
    dropped = build(warm_start=False, drop=True)
    for a, b in pairs:
        assert dropped.simulate_class(short_class(a, b)) == \
            full.simulate_class(short_class(a, b)), (macro, a, b)


def test_comparator_drop_actually_skips_probes():
    """The knob must do something, or the speedup claim is vacuous."""
    engine = ComparatorFaultEngine(EngineConfig(drop=True))
    engine.simulate_class(short_class("lp", "ln"))
    assert engine.probes_dropped > 0


def test_no_drop_runs_exhaustive_schedule():
    engine = ComparatorFaultEngine(EngineConfig(drop=False))
    engine.simulate_class(short_class("lp", "ln"))
    assert engine.probes_dropped == 0
