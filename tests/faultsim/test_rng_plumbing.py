"""Explicit-Generator plumbing: every Monte Carlo entry point accepts
``numpy.random.Generator`` and matches its seed-based path exactly."""

import numpy as np

from repro.adc.comparator import comparator_layout
from repro.adc.mismatch import offset_distribution
from repro.defects.sprinkle import iter_sprinkle, sprinkle
from repro.digital import LogicNetlist
from repro.digital.atpg import generate_tests
from repro.faultsim.macro_engines import DecoderFaultEngine


def half_adder():
    n = LogicNetlist("ha")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("gx", "XOR2", ["a", "b"], "sum")
    n.add_gate("ga", "AND2", ["a", "b"], "carry")
    n.add_output("sum")
    n.add_output("carry")
    return n


def _defect_key(defect):
    d = defect.disk
    return (defect.mechanism.name, d.cx, d.cy, d.radius)


class TestSprinkle:
    def test_rng_matches_seed_path(self):
        cell = comparator_layout()
        via_seed = sprinkle(cell, 300, seed=11)
        via_rng = sprinkle(cell, 300, rng=np.random.default_rng(11))
        assert [_defect_key(d) for d in via_seed] == \
            [_defect_key(d) for d in via_rng]

    def test_iter_sprinkle_shares_a_stream(self):
        # one generator across two calls continues the stream instead
        # of replaying it
        cell = comparator_layout()
        rng = np.random.default_rng(3)
        first = list(iter_sprinkle(cell, 50, rng=rng))
        second = list(iter_sprinkle(cell, 50, rng=rng))
        assert [_defect_key(d) for d in first] != \
            [_defect_key(d) for d in second]

    def test_explicit_rng_overrides_seed(self):
        cell = comparator_layout()
        a = sprinkle(cell, 100, seed=999,
                     rng=np.random.default_rng(5))
        b = sprinkle(cell, 100, seed=0, rng=np.random.default_rng(5))
        assert [_defect_key(d) for d in a] == \
            [_defect_key(d) for d in b]


class TestAtpg:
    def test_rng_matches_seed_path(self):
        via_seed = generate_tests(half_adder(), seed=4)
        via_rng = generate_tests(half_adder(),
                                 rng=np.random.default_rng(4))
        assert via_seed.vectors == via_rng.vectors
        assert via_seed.coverage == via_rng.coverage


class TestMismatch:
    def test_offset_distribution_rng_matches_seed_path(self):
        via_seed = offset_distribution(n_samples=2, seed=5,
                                       resolution=8e-3)
        via_rng = offset_distribution(n_samples=2,
                                      rng=np.random.default_rng(5),
                                      resolution=8e-3)
        assert np.array_equal(via_seed, via_rng)


class TestDecoderEngine:
    def test_run_rng_matches_seed_path(self):
        engine = DecoderFaultEngine(n_bridge_sample=15,
                                    n_stuck_sample=10, seed=21)
        via_seed = engine.run()
        via_rng = engine.run(rng=np.random.default_rng(21))
        assert via_seed == via_rng
