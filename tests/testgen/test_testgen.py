"""Tests for stimuli, detection, cost model, spec baseline and DfT."""

import numpy as np
import pytest

from repro.adc.behavioral import ComparatorBehavior
from repro.adc.flash import nominal_adc
from repro.testgen import (CurrentTestStimulus, DfTConfig, FULL_DFT,
                           MissingCodeStimulus, NO_DFT,
                           comparator_layout_for, current_only_cost,
                           defect_oriented_cost, histogram,
                           measure_static, missing_code_test,
                           spec_test_detects,
                           specification_oriented_cost)


class TestStimuli:
    def test_triangle_covers_all_codes(self):
        samples = MissingCodeStimulus().samples()
        assert len(samples) == 1000
        adc = nominal_adc()
        codes = set(adc.convert_many(samples).tolist())
        assert codes == set(range(256))

    def test_current_plan_six_points(self):
        plan = CurrentTestStimulus().measurement_points()
        assert len(plan) == 6
        assert ("above", "sampling") in plan
        assert ("below", "latching") in plan

    def test_test_times(self):
        assert MissingCodeStimulus().test_time() == pytest.approx(
            1000 * 150e-9)
        assert CurrentTestStimulus().test_time() == pytest.approx(
            6 * 100e-6)


class TestMissingCodeTest:
    def test_nominal_passes(self):
        result = missing_code_test(nominal_adc())
        assert result.passed and not result.detected

    def test_stuck_comparator_fails(self):
        adc = nominal_adc().with_comparator(
            77, ComparatorBehavior(stuck=True))
        result = missing_code_test(adc)
        assert result.detected
        assert len(result.missing) >= 1

    def test_histogram_shape(self):
        h = histogram(nominal_adc())
        assert len(h) == 256
        assert h.sum() == 1000
        assert np.all(h[1:255] > 0)


class TestSpecBaseline:
    def test_nominal_passes(self):
        m = measure_static(nominal_adc())
        assert m.passes()
        assert m.dnl < 0.5
        assert abs(m.offset_lsb) < 1.0

    def test_gross_fault_rejected(self):
        adc = nominal_adc().with_comparator(
            128, ComparatorBehavior(stuck=False))
        assert spec_test_detects(adc)

    def test_small_offset_accepted(self):
        """Key asymmetry: a sub-LSB shift passes the spec test even
        though it is a real defect-induced deviation."""
        adc = nominal_adc().with_comparator(
            128, ComparatorBehavior(offset=0.002))
        assert not spec_test_detects(adc)

    def test_dead_converter_everything_inf(self):
        from repro.adc.behavioral import ClockBehavior
        adc = nominal_adc().with_clocks(ClockBehavior(phi1_ok=False))
        m = measure_static(adc)
        assert not m.passes()


class TestCostModel:
    def test_defect_test_sub_millisecond(self):
        cost = defect_oriented_cost()
        assert cost.total < 10e-3
        # the current measurements dominate the active test time
        assert cost.components["current_measurements"] > \
            cost.components["missing_code_sampling"]

    def test_spec_test_much_more_expensive(self):
        """The paper's economic claim: defect-oriented tests compare
        favourably with functional tests."""
        defect = defect_oriented_cost()
        spec = specification_oriented_cost()
        assert spec.total > 5 * defect.total

    def test_current_only_cheapest(self):
        assert current_only_cost().total < defect_oriented_cost().total


class TestDfTConfig:
    def test_labels(self):
        assert NO_DFT.label == "dft:none"
        assert FULL_DFT.label == "dft:ff+bias"
        assert DfTConfig(flipflop_redesign=True).label == "dft:ff"

    def test_layout_variants_differ(self):
        std = comparator_layout_for(NO_DFT)
        full = comparator_layout_for(FULL_DFT)
        assert len(full.devices) < len(std.devices)  # leak removed

        def track_y(cell, net):
            return min(s.rect.y0 for s in cell.shapes_on("metal1")
                       if s.net == net and s.rect.width > 100)

        assert abs(track_y(std, "vbn1") - track_y(std, "vbn2")) == \
            pytest.approx(3.0)
        assert abs(track_y(full, "vbn1") - track_y(full, "vbn2")) > 3.0
