"""Tests for the at-speed (dynamic) missing-code test extension."""

import pytest

from repro.adc.behavioral import ClockBehavior, ComparatorBehavior
from repro.adc.flash import nominal_adc
from repro.faultsim import Measurement, SignatureResult, VoltageSignature
from repro.macrotest import propagate_comparator_fault
from repro.testgen.detection import (dynamic_missing_code_test,
                                     missing_code_test)
from repro.defects import ShortFault


def degraded_adc(instance=128):
    return nominal_adc().with_comparator(
        instance, ComparatorBehavior(clock_degraded=True))


class TestDynamicMissingCode:
    def test_nominal_passes_at_speed(self):
        assert not dynamic_missing_code_test(nominal_adc()).detected

    def test_clock_degraded_escapes_static(self):
        """Baseline: the paper's static test cannot see these."""
        assert not missing_code_test(degraded_adc()).detected

    def test_clock_degraded_caught_at_speed(self):
        assert dynamic_missing_code_test(degraded_adc()).detected

    def test_globally_degraded_clock_caught_at_speed(self):
        adc = nominal_adc().with_clocks(ClockBehavior(degraded=True))
        assert not missing_code_test(adc).detected
        assert dynamic_missing_code_test(adc).detected

    def test_static_faults_still_caught(self):
        adc = nominal_adc().with_comparator(
            10, ComparatorBehavior(stuck=True))
        assert dynamic_missing_code_test(adc).detected


class TestPropagationWithDynamicTest:
    def make_signature(self):
        z = (0.0, 0.0, 0.0)
        m = Measurement(decision=True, ivdd=z, iddq=z, iin=z, ivref=z,
                        ibias=z, clock_deviation=0.5)
        return SignatureResult(voltage=VoltageSignature.CLOCK_VALUE,
                               offset_sign=0, mechanisms=frozenset(),
                               measurements={"above": m, "below": m})

    def fault(self):
        return ShortFault(nets=frozenset({"outp", "outn"}),
                          layer="metal1", resistance=0.2)

    def test_clock_value_undetected_statically(self):
        assert not propagate_comparator_fault(self.make_signature(),
                                              self.fault())

    def test_clock_value_detected_with_dynamic_test(self):
        assert propagate_comparator_fault(self.make_signature(),
                                          self.fault(), at_speed=True)
