"""Tests for the test-plan optimizer."""

import pytest

from repro.faultsim import CurrentMechanism
from repro.macrotest import DetectionRecord, MacroResult
from repro.testgen.optimize import (MISSING_CODE, TestPlan, full_plan_cost,
                                    measurement_cost, optimize_test_plan)

IVDD_S = ("ivdd", "sampling", "above")
IDDQ_S = ("iddq", "sampling", "above")
IDDQ_L = ("iddq", "latching", "below")


def rec(count, voltage=False, keys=()):
    mechs = set()
    for k in keys:
        mechs.add(CurrentMechanism.IVDD if k[0] == "ivdd"
                  else CurrentMechanism.IDDQ)
    return DetectionRecord(count=count, voltage_detected=voltage,
                           mechanisms=frozenset(mechs),
                           violated_keys=frozenset(keys))


def macro(records):
    return MacroResult(name="m", bbox_area=1.0, instances=1,
                       defects_sprinkled=1000, records=tuple(records))


class TestOptimize:
    def test_single_measurement_suffices(self):
        m = macro([rec(10, keys=[IVDD_S]), rec(5, keys=[IVDD_S])])
        plan = optimize_test_plan(m)
        assert plan.measurements == (IVDD_S,)
        assert plan.coverage == pytest.approx(1.0)

    def test_overlap_collapses_to_one(self):
        """Two mechanisms covering the same faults: pick only one."""
        m = macro([rec(10, keys=[IVDD_S, IDDQ_S])])
        plan = optimize_test_plan(m)
        assert len(plan.measurements) == 1

    def test_complementary_measurements_both_chosen(self):
        m = macro([rec(10, keys=[IVDD_S]), rec(10, keys=[IDDQ_L])])
        plan = optimize_test_plan(m)
        assert set(plan.measurements) == {IVDD_S, IDDQ_L}

    def test_missing_code_included_when_needed(self):
        m = macro([rec(10, voltage=True), rec(5, keys=[IDDQ_S])])
        plan = optimize_test_plan(m)
        assert MISSING_CODE in plan.measurements
        assert plan.coverage == pytest.approx(1.0)

    def test_cost_weighting_prefers_current(self):
        """A fault caught by both: the cheaper current measurement wins
        (100 us vs the 150 us missing-code test)."""
        m = macro([rec(10, voltage=True, keys=[IDDQ_S])])
        plan = optimize_test_plan(m)
        assert plan.measurements == (IDDQ_S,)

    def test_undetectable_faults_bound_achievable(self):
        m = macro([rec(8, keys=[IVDD_S]), rec(2)])
        plan = optimize_test_plan(m)
        assert plan.achievable == pytest.approx(0.8)
        assert plan.coverage == pytest.approx(0.8)

    def test_min_coverage_stops_early(self):
        m = macro([rec(90, keys=[IVDD_S]), rec(10, keys=[IDDQ_L])])
        plan = optimize_test_plan(m, min_coverage=0.9)
        assert plan.measurements == (IVDD_S,)

    def test_empty_macro_rejected(self):
        with pytest.raises(ValueError):
            optimize_test_plan(macro([]))

    def test_plan_is_cheaper_than_naive(self):
        m = macro([rec(10, voltage=True, keys=[IVDD_S, IDDQ_S])])
        plan = optimize_test_plan(m)
        assert plan.cost < full_plan_cost()

    def test_describe(self):
        m = macro([rec(10, voltage=True), rec(5, keys=[IDDQ_S])])
        text = optimize_test_plan(m).describe()
        assert "missing-code test" in text
        assert "coverage" in text


class TestResolutionAware:
    def _dictionary(self, records, labels=None):
        from repro.diagnosis import compile_dictionary
        labels = labels or [f"m:cat:{k}" for k in range(len(records))]
        return compile_dictionary(
            [(label, "m", 1.0, record)
             for label, record in zip(labels, records)])

    def test_no_dictionary_keeps_plan_unannotated(self):
        m = macro([rec(10, keys=[IVDD_S])])
        assert optimize_test_plan(m).resolution is None

    def test_zero_weight_reproduces_coverage_plan(self):
        records = [rec(10, voltage=True, keys=[IVDD_S]),
                   rec(5, voltage=True, keys=[IDDQ_L])]
        m = macro(records)
        base = optimize_test_plan(m)
        annotated = optimize_test_plan(m,
                                       dictionary=self._dictionary(
                                           records))
        assert annotated.measurements == base.measurements
        assert annotated.resolution is not None

    def test_resolution_weight_buys_extra_measurements(self):
        # both classes are covered by the missing-code test alone, but
        # only their current signatures tell them apart
        records = [rec(10, voltage=True, keys=[IVDD_S]),
                   rec(10, voltage=True, keys=[IDDQ_L])]
        m = macro(records)
        d = self._dictionary(records)
        base = optimize_test_plan(m, dictionary=d)
        aware = optimize_test_plan(m, dictionary=d,
                                   resolution_weight=1000.0)
        assert aware.resolution > base.resolution
        assert len(aware.measurements) >= len(base.measurements)
        assert aware.coverage >= base.coverage

    def test_describe_reports_resolution(self):
        records = [rec(10, keys=[IVDD_S])]
        plan = optimize_test_plan(macro(records),
                                  dictionary=self._dictionary(records))
        assert "diagnostic resolution" in plan.describe()


class TestCosts:
    def test_measurement_costs(self):
        assert measurement_cost(IVDD_S) == pytest.approx(100e-6)
        assert measurement_cost(MISSING_CODE) == pytest.approx(150e-6)
        assert full_plan_cost() == pytest.approx(150e-6 + 24 * 100e-6)


class TestOnRealEngine:
    def test_plan_from_real_run(self):
        """Small real run: the optimizer reproduces the aggregate
        coverage with a handful of measurements."""
        from repro.core import DefectOrientedTestPath, PathConfig
        from repro.macrotest import macro_breakdown

        config = PathConfig(n_defects=4000, max_classes=8,
                            include_noncat=False)
        result = DefectOrientedTestPath(config).run(
            macros=["comparator"])
        comparator = result.macros["comparator"].result
        plan = optimize_test_plan(comparator)
        breakdown = macro_breakdown(comparator)
        assert plan.coverage == pytest.approx(breakdown.total, abs=1e-9)
        assert plan.cost < full_plan_cost()
        assert 1 <= len(plan.measurements) <= 25

class TestDeprecationShim:
    """optimize_test_plan() now delegates to the evolutionary
    package's generation-0 greedy — same signature, same plans."""

    def test_emits_deprecation_warning(self):
        m = macro([rec(10, keys=[IVDD_S])])
        with pytest.warns(DeprecationWarning,
                          match="repro.optimize"):
            optimize_test_plan(m)

    def test_plan_identical_to_greedy(self):
        import warnings

        from repro.optimize import greedy_test_plan

        m = macro([rec(10, voltage=True, keys=[IVDD_S]),
                   rec(7, keys=[IDDQ_S]),
                   rec(3, keys=[IDDQ_L]),
                   rec(2)])
        direct = greedy_test_plan(m, min_coverage=0.9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = optimize_test_plan(m, min_coverage=0.9)
        assert isinstance(shimmed, TestPlan)
        assert shimmed == direct

    def test_explicit_rng_accepted(self):
        """Every plan producer takes an explicit numpy Generator (the
        greedy is deterministic, so it changes nothing)."""
        import warnings

        import numpy as np

        m = macro([rec(10, keys=[IVDD_S])])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            a = optimize_test_plan(m)
            b = optimize_test_plan(m, rng=np.random.default_rng(5))
        assert a == b
