"""The documentation's code snippets must actually run.

Extracts every fenced python block from docs/METHODOLOGY.md and
executes them in one shared namespace (they build on each other), with
the Monte Carlo budgets reduced for test time.
"""

import pathlib
import re

import pytest

DOC = pathlib.Path(__file__).parents[2] / "docs" / "METHODOLOGY.md"


def python_blocks(text):
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_methodology_snippets_run():
    text = DOC.read_text()
    blocks = python_blocks(text)
    assert len(blocks) >= 6
    namespace = {}
    for block in blocks:
        # shrink the budgets so the doc walkthrough stays quick
        block = block.replace("sprinkle(cell, 25000", "sprinkle(cell, 4000")
        block = block.replace("n_defects=10000", "n_defects=2500")
        block = block.replace("max_classes=30", "max_classes=3")
        exec(compile(block, str(DOC), "exec"), namespace)
    # the walkthrough ends with advice rendered from a real run
    assert "run" in namespace


def test_readme_mentions_all_benchmarks():
    readme = (DOC.parents[1] / "README.md").read_text()
    bench_dir = DOC.parents[1] / "benchmarks"
    for bench in bench_dir.glob("bench_*.py"):
        assert bench.name in readme, f"README missing {bench.name}"
