"""End-to-end integration tests across package boundaries.

These exercise the same chains the examples and benchmarks use, at
small Monte Carlo budgets so the whole file stays under ~2 minutes.
"""

import numpy as np
import pytest

from repro.adc.comparator import comparator_layout
from repro.core import DefectOrientedTestPath, PathConfig
from repro.defects import analyze_defects, collapse, sprinkle
from repro.faultsim import (ComparatorFaultEngine, CurrentMechanism,
                            VoltageSignature, derive_noncatastrophic)
from repro.macrotest import macro_breakdown
from repro.testgen import DfTConfig, NO_DFT


@pytest.fixture(scope="module")
def comparator_campaign():
    cell = comparator_layout()
    defects = sprinkle(cell, 12000, seed=2024)
    faults = analyze_defects(cell, defects)
    return cell, defects, faults, collapse(faults)


class TestDefectCampaign:
    def test_fault_yield_low(self, comparator_campaign):
        """Most defects are harmless (paper: ~2 % fault yield)."""
        _, defects, faults, _ = comparator_campaign
        assert 0.005 < len(faults) / len(defects) < 0.10

    def test_shorts_dominate(self, comparator_campaign):
        _, _, faults, _ = comparator_campaign
        shorts = sum(1 for f in faults if f.fault_type == "short")
        assert shorts / len(faults) > 0.9

    def test_collapsing_compresses(self, comparator_campaign):
        _, _, faults, classes = comparator_campaign
        assert len(classes) < len(faults) / 2
        assert sum(fc.count for fc in classes) == len(faults)

    def test_shared_line_faults_majority(self, comparator_campaign):
        """Paper: only 27.8 % of comparator faults stay local; the rest
        touch the clock/bias/supply distribution."""
        from repro.macrotest import fault_shared_nets
        _, _, faults, _ = comparator_campaign
        shared = sum(1 for f in faults if fault_shared_nets(f))
        assert shared / len(faults) > 0.5

    def test_noncat_derivation_mirrors_bridges(self, comparator_campaign):
        _, _, _, classes = comparator_campaign
        noncat = derive_noncatastrophic(classes)
        bridge_classes = [fc for fc in classes
                          if fc.fault_type in ("short", "extra_contact")]
        assert 0 < len(noncat) <= len(bridge_classes)


class TestSignatureChain:
    """One fault followed through the entire pipeline by hand."""

    def test_clock_short_full_chain(self):
        from repro.defects import ShortFault
        from repro.defects.collapse import FaultClass
        from repro.macrotest import propagate_comparator_fault

        fault = ShortFault(nets=frozenset({"phi1", "gnd"}),
                           layer="metal1", resistance=0.2)
        engine = ComparatorFaultEngine()
        result = engine.simulate_class_signature(
            FaultClass(representative=fault, count=1))
        # a grounded sampling clock freezes the comparator
        assert result.signature.voltage == \
            VoltageSignature.OUTPUT_STUCK_AT
        # and loads the clock generator: IDDQ
        assert CurrentMechanism.IDDQ in result.signature.mechanisms
        # the stuck signature propagates to missing codes
        assert propagate_comparator_fault(result.signature, fault)


class TestDfTPath:
    def test_dft_shrinks_ivdd_window(self):
        cfg_std = PathConfig(n_defects=1000, max_classes=2,
                             include_noncat=False, dft=NO_DFT)
        cfg_dft = PathConfig(n_defects=1000, max_classes=2,
                             include_noncat=False,
                             dft=DfTConfig(flipflop_redesign=True))
        w_std = DefectOrientedTestPath(cfg_std)._ivdd_halfwidth()
        w_dft = DefectOrientedTestPath(cfg_dft)._ivdd_halfwidth()
        assert w_dft < w_std / 2.0

    def test_bias_reorder_removes_twin_bridges(self):
        from repro.testgen import comparator_layout_for
        cfg = DfTConfig(bias_line_reorder=True)
        twin = frozenset({"vbn1", "vbn2"})

        def twin_faults(cell):
            faults = analyze_defects(cell, sprinkle(cell, 15000, seed=9))
            return sum(1 for f in faults
                       if getattr(f, "nets", None) == twin)

        std = twin_faults(comparator_layout_for(NO_DFT))
        dft = twin_faults(comparator_layout_for(cfg))
        assert std > 0
        assert dft < std


class TestReproducibility:
    def test_same_seed_same_classes(self):
        cell = comparator_layout()
        a = collapse(analyze_defects(cell, sprinkle(cell, 5000, seed=3)))
        b = collapse(analyze_defects(cell, sprinkle(cell, 5000, seed=3)))
        assert [(fc.representative.collapse_key(), fc.count)
                for fc in a] == \
               [(fc.representative.collapse_key(), fc.count) for fc in b]
