"""Smoke tests: every example script runs to completion.

The scripts are executed in-process (import + main) with their heaviest
knobs monkeypatched down where needed, so this file stays fast.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name, monkeypatch, capsys):
    """Execute an example as __main__ and return its stdout."""
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_examples_exist():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 6


def test_spice_export_example(monkeypatch, capsys, tmp_path):
    monkeypatch.setattr("sys.argv",
                        ["spice_export.py", str(tmp_path / "sp")])
    out = run_example("spice_export.py", monkeypatch, capsys)
    assert "two diode drops" in out
    assert (tmp_path / "sp" / "comparator.sp").exists()


def test_ladder_analysis_example(monkeypatch, capsys):
    out = run_example("ladder_analysis.py", monkeypatch, capsys)
    assert "rail bridge" in out
    assert "DETECT" in out


def test_missing_code_vs_spec_example(monkeypatch, capsys):
    out = run_example("missing_code_vs_spec_test.py", monkeypatch,
                      capsys)
    assert "DETECT" in out
    assert "speedup" in out


def test_comparator_transient_example(monkeypatch, capsys):
    out = run_example("comparator_transient.py", monkeypatch, capsys)
    assert "decision: ABOVE" in out
    assert "decision: below" in out
    assert "gate-oxide pinhole" in out


@pytest.mark.slow
def test_quickstart_example(monkeypatch, capsys):
    import repro.defects
    original = repro.defects.sprinkle

    def small_sprinkle(cell, n_defects, stats=None, seed=0):
        return original(cell, min(n_defects, 2000), stats=stats,
                        seed=seed)

    monkeypatch.setattr(repro.defects, "sprinkle", small_sprinkle)
    out = run_example("quickstart.py", monkeypatch, capsys)
    assert "fault classes" in out
    assert "->" in out
