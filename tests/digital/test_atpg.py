"""Tests for the stuck-at test generator."""

import itertools

import pytest

from repro.adc.decoder import build_decoder, thermometer_vector
from repro.digital import (LogicNetlist, StuckAtFault,
                           all_stuck_at_faults, stuck_at_coverage)
from repro.digital.atpg import (TestSet, compact_tests, fault_simulate,
                                generate_tests)


def half_adder():
    n = LogicNetlist("ha")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("gx", "XOR2", ["a", "b"], "sum")
    n.add_gate("ga", "AND2", ["a", "b"], "carry")
    n.add_output("sum")
    n.add_output("carry")
    return n


class TestFaultSimulate:
    def test_first_detection_index(self):
        n = half_adder()
        vectors = [{"a": False, "b": False}, {"a": True, "b": True}]
        result = fault_simulate(n, vectors,
                                [StuckAtFault("carry", False)])
        assert result[StuckAtFault("carry", False)] == 1

    def test_escape_is_none(self):
        n = half_adder()
        result = fault_simulate(n, [{"a": False, "b": False}],
                                [StuckAtFault("carry", False)])
        assert result[StuckAtFault("carry", False)] is None


class TestGenerateTests:
    def test_full_coverage_half_adder(self):
        ts = generate_tests(half_adder(), seed=1)
        assert ts.coverage == 1.0
        assert ts.undetected == ()
        assert 1 <= len(ts.vectors) <= 4

    def test_vectors_actually_cover(self):
        n = half_adder()
        ts = generate_tests(n, seed=2)
        cov, undet = stuck_at_coverage(n, ts.vectors)
        assert cov == 1.0

    def test_budget_respected(self):
        ts = generate_tests(build_decoder(4), max_candidates=5, seed=0)
        assert ts.candidates_tried <= 5

    def test_target_validation(self):
        with pytest.raises(ValueError):
            generate_tests(half_adder(), target_coverage=0.0)

    def test_decoder4_high_coverage(self):
        """Random ATPG reaches the structural ceiling (code 0's hot row
        never drives any output bit, so its faults are redundant)."""
        ts = generate_tests(build_decoder(4), max_candidates=128, seed=3)
        assert ts.coverage > 0.90
        assert all("nt" in str(f) or "h" in str(f)
                   for f in ts.undetected)


class TestCompaction:
    def test_removes_redundant_vectors(self):
        n = half_adder()
        exhaustive = [dict(zip(("a", "b"), bits))
                      for bits in itertools.product([False, True],
                                                    repeat=2)]
        redundant = exhaustive + exhaustive  # duplicated set
        compacted = compact_tests(n, redundant)
        assert len(compacted) < len(redundant)
        cov, _ = stuck_at_coverage(n, compacted)
        assert cov == 1.0


class TestFunctionalVsATPG:
    def test_functional_vectors_beat_random(self):
        """Random patterns rarely reproduce the monotone inputs the OR
        plane needs; the functional thermometer set is a strong seed."""
        n = build_decoder(4)
        faults = all_stuck_at_faults(n)
        functional = [thermometer_vector(code, 4) for code in range(16)]
        func_detected = sum(
            1 for d in fault_simulate(n, functional, faults).values()
            if d is not None)
        random_only = generate_tests(n, faults=faults,
                                     max_candidates=64, seed=4)
        assert func_detected / len(faults) > random_only.coverage - 0.05

    def test_seeded_atpg_tops_up_functional(self):
        n = build_decoder(4)
        faults = all_stuck_at_faults(n)
        functional = [thermometer_vector(code, 4) for code in range(16)]
        func_detected = sum(
            1 for d in fault_simulate(n, functional, faults).values()
            if d is not None)
        seeded = generate_tests(n, faults=faults, max_candidates=256,
                                seed=4, seed_vectors=functional)
        assert seeded.coverage >= func_detected / len(faults)