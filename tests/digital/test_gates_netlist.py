"""Tests for the gate library and logic netlist."""

import pytest
from hypothesis import given, strategies as st

from repro.digital import (LIBRARY, LogicError, LogicNetlist, gate_type)


class TestGateLibrary:
    def test_basic_functions(self):
        assert gate_type("INV").evaluate([True]) is False
        assert gate_type("NAND2").evaluate([True, True]) is False
        assert gate_type("NAND2").evaluate([True, False]) is True
        assert gate_type("XOR2").evaluate([True, False]) is True
        assert gate_type("MUX2").evaluate([True, False, False]) is True
        assert gate_type("MUX2").evaluate([True, False, True]) is False
        assert gate_type("AOI21").evaluate([True, True, False]) is False

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            gate_type("NAND2").evaluate([True])

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            gate_type("NAND9")

    @given(st.sampled_from(sorted(LIBRARY)),
           st.lists(st.booleans(), min_size=1, max_size=3))
    def test_all_gates_return_bool(self, name, bits):
        gt = LIBRARY[name]
        if len(bits) != gt.arity:
            return
        assert gt.evaluate(bits) in (True, False)


def half_adder():
    n = LogicNetlist("ha")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("gx", "XOR2", ["a", "b"], "sum")
    n.add_gate("ga", "AND2", ["a", "b"], "carry")
    n.add_output("sum")
    n.add_output("carry")
    return n


class TestLogicNetlist:
    def test_half_adder_truth_table(self):
        n = half_adder()
        for a in (False, True):
            for b in (False, True):
                out = n.outputs({"a": a, "b": b})
                assert out["sum"] == (a != b)
                assert out["carry"] == (a and b)

    def test_multiple_drivers_rejected(self):
        n = half_adder()
        with pytest.raises(LogicError):
            n.add_gate("g2", "AND2", ["a", "b"], "sum")

    def test_duplicate_gate_name_rejected(self):
        n = half_adder()
        with pytest.raises(LogicError):
            n.add_gate("gx", "AND2", ["a", "b"], "other")

    def test_driving_primary_input_rejected(self):
        n = half_adder()
        with pytest.raises(LogicError):
            n.add_gate("g3", "INV", ["sum"], "a")

    def test_missing_input_value_rejected(self):
        n = half_adder()
        with pytest.raises(LogicError):
            n.outputs({"a": True})

    def test_levelize_deep_chain(self):
        n = LogicNetlist()
        n.add_input("x")
        prev = "x"
        for k in range(20):
            n.add_gate(f"i{k}", "INV", [prev], f"n{k}")
            prev = f"n{k}"
        n.add_output(prev)
        assert n.outputs({"x": True})[prev] is True  # even inversions

    def test_combinational_loop_detected(self):
        n = LogicNetlist()
        n.add_input("x")
        n.add_gate("g1", "AND2", ["x", "b"], "a")
        n.add_gate("g2", "INV", ["a"], "b")
        n.add_output("a")
        with pytest.raises(LogicError, match="loop"):
            n.levelize()

    def test_undriven_net_detected(self):
        n = LogicNetlist()
        n.add_input("x")
        n.add_gate("g1", "AND2", ["x", "ghost"], "y")
        n.add_output("y")
        with pytest.raises(LogicError, match="undriven"):
            n.outputs({"x": True})

    def test_transistor_count(self):
        n = half_adder()
        assert n.transistor_count() == 8 + 6

    def test_forced_nets_override(self):
        n = half_adder()
        out = n.outputs({"a": True, "b": True},
                        forced_nets={"carry": False})
        assert out["carry"] is False

    def test_nets_enumeration(self):
        n = half_adder()
        assert n.nets() == {"a", "b", "sum", "carry"}
