"""Tests for digital stuck-at and bridging fault machinery."""

import itertools

import pytest

from repro.digital import (BridgingFault, LogicNetlist, StuckAtFault,
                           all_stuck_at_faults, detects_stuck_at,
                           iddq_bridge_coverage, iddq_detects_bridge,
                           logic_detects_bridge, neighbouring_bridges,
                           stuck_at_coverage)


def and_gate_netlist():
    n = LogicNetlist()
    n.add_input("a")
    n.add_input("b")
    n.add_gate("g", "AND2", ["a", "b"], "y")
    n.add_output("y")
    return n


def exhaustive_vectors(inputs):
    return [dict(zip(inputs, bits))
            for bits in itertools.product([False, True],
                                          repeat=len(inputs))]


class TestStuckAt:
    def test_fault_universe_size(self):
        n = and_gate_netlist()
        faults = all_stuck_at_faults(n)
        assert len(faults) == 2 * 3  # nets a, b, y

    def test_detects_output_sa0(self):
        n = and_gate_netlist()
        f = StuckAtFault("y", False)
        assert detects_stuck_at(n, f, {"a": True, "b": True})
        assert not detects_stuck_at(n, f, {"a": False, "b": True})

    def test_detects_input_sa1(self):
        n = and_gate_netlist()
        f = StuckAtFault("a", True)
        assert detects_stuck_at(n, f, {"a": False, "b": True})
        assert not detects_stuck_at(n, f, {"a": False, "b": False})

    def test_exhaustive_coverage_is_full(self):
        n = and_gate_netlist()
        cov, undet = stuck_at_coverage(n, exhaustive_vectors(["a", "b"]))
        assert cov == 1.0
        assert undet == []

    def test_single_vector_partial_coverage(self):
        n = and_gate_netlist()
        cov, undet = stuck_at_coverage(n, [{"a": True, "b": True}])
        assert 0.0 < cov < 1.0
        assert StuckAtFault("y", True) in undet

    def test_str_form(self):
        assert str(StuckAtFault("net1", True)) == "net1/SA1"


class TestBridging:
    def test_iddq_detect_requires_opposite_values(self):
        n = and_gate_netlist()
        f = BridgingFault("a", "b")
        assert iddq_detects_bridge(n, f, {"a": True, "b": False})
        assert not iddq_detects_bridge(n, f, {"a": True, "b": True})

    def test_internal_bridge(self):
        n = and_gate_netlist()
        f = BridgingFault("a", "y")
        # a=1, b=0 -> y=0, a=1: opposite -> IDDQ detected
        assert iddq_detects_bridge(n, f, {"a": True, "b": False})

    def test_logic_detect_wired_and(self):
        n = and_gate_netlist()
        f = BridgingFault("a", "b")
        # a=1,b=0: wired-AND forces both 0, output unchanged (0) -> not
        # logic-detected even though IDDQ sees it.
        assert not logic_detects_bridge(n, f, {"a": True, "b": False})

    def test_iddq_beats_logic_on_redundant_bridge(self):
        """The mechanism behind the paper's IDDQ observations: bridges
        detectable by current but not by logic values."""
        n = and_gate_netlist()
        f = BridgingFault("a", "b")
        vecs = exhaustive_vectors(["a", "b"])
        iddq = any(iddq_detects_bridge(n, f, v) for v in vecs)
        logic = any(logic_detects_bridge(n, f, v) for v in vecs)
        assert iddq and not logic

    def test_iddq_bridge_coverage(self):
        n = and_gate_netlist()
        bridges = neighbouring_bridges(n)
        cov, undet = iddq_bridge_coverage(n, exhaustive_vectors(["a", "b"]),
                                          bridges)
        assert cov == 1.0
        assert undet == []

    def test_neighbouring_bridges_enumeration(self):
        n = and_gate_netlist()
        bridges = neighbouring_bridges(n)
        pairs = {(b.net_a, b.net_b) for b in bridges}
        assert pairs == {("a", "b"), ("a", "y"), ("b", "y")}

    def test_max_pairs_limit(self):
        n = and_gate_netlist()
        assert len(neighbouring_bridges(n, max_pairs=2)) == 2
