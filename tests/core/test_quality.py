"""Tests for the outgoing-quality (DPPM) model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quality import (QualityReport, chip_fault_rate,
                                defect_level, dppm, poisson_yield,
                                quality_report)
from repro.faultsim import CurrentMechanism
from repro.macrotest import DetectionRecord, MacroResult


def macro(area=1e6, instances=1, yield_=0.02, defects=10000,
          detected_fraction=0.9):
    n_det = int(round(yield_ * defects * detected_fraction))
    n_esc = int(round(yield_ * defects)) - n_det
    records = []
    if n_det:
        records.append(DetectionRecord(
            count=n_det, voltage_detected=True, mechanisms=frozenset()))
    if n_esc:
        records.append(DetectionRecord(
            count=n_esc, voltage_detected=False,
            mechanisms=frozenset()))
    return MacroResult(name="m", bbox_area=area, instances=instances,
                       defects_sprinkled=defects, records=tuple(records))


class TestFaultRate:
    def test_scaling(self):
        # 1e6 um^2 = 0.01 cm^2; density 1/cm^2; yield 0.02 faults/defect
        m = macro()
        rate = chip_fault_rate([m], defect_density_cm2=1.0)
        assert rate == pytest.approx(0.01 * 1.0 * 0.02)

    def test_instances_multiply(self):
        one = chip_fault_rate([macro(instances=1)])
        many = chip_fault_rate([macro(instances=256)])
        assert many == pytest.approx(256 * one)

    def test_bad_density(self):
        with pytest.raises(ValueError):
            chip_fault_rate([macro()], defect_density_cm2=0.0)


class TestYieldAndDefectLevel:
    def test_poisson(self):
        assert poisson_yield(0.0) == 1.0
        assert poisson_yield(1.0) == pytest.approx(math.exp(-1))
        with pytest.raises(ValueError):
            poisson_yield(-1.0)

    def test_williams_brown_extremes(self):
        assert defect_level(0.9, 1.0) == pytest.approx(0.0)
        assert defect_level(0.9, 0.0) == pytest.approx(0.1)

    def test_paper_scale_improvement(self):
        """93.3 % -> 99.1 % coverage cuts shipped DPPM by ~7x."""
        y = 0.8
        before = dppm(y, 0.933)
        after = dppm(y, 0.991)
        assert before / after == pytest.approx(0.067 / 0.009, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            defect_level(0.0, 0.5)
        with pytest.raises(ValueError):
            defect_level(0.9, 1.5)

    @given(st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_coverage(self, y, t):
        """More coverage never ships more defects."""
        assert defect_level(y, t) <= defect_level(y, max(0.0, t - 0.1)) \
            + 1e-12


class TestQualityReport:
    def test_uses_run_coverage_by_default(self):
        report = quality_report([macro(detected_fraction=0.9)])
        assert report.coverage == pytest.approx(0.9, abs=0.01)
        assert report.shipped_dppm > 0

    def test_explicit_coverage(self):
        report = quality_report([macro()], coverage=1.0)
        assert report.shipped_dppm == pytest.approx(0.0)

    def test_str(self):
        text = str(quality_report([macro()]))
        assert "DPPM" in text and "coverage" in text
