"""Tests for the path orchestrator and the report renderers."""

import pytest

from repro.core import (DefectOrientedTestPath, PathConfig,
                        current_signature_distribution, render_fig3,
                        render_fig4, render_macro_current_detectability,
                        render_table1, render_table2, render_table3,
                        voltage_signature_distribution)
from repro.defects import ShortFault, collapse
from repro.faultsim import CurrentMechanism, VoltageSignature
from repro.macrotest import CoverageBreakdown, DetectionRecord, MacroResult


def rec(count, voltage, mechs, sig=None, ftype="short"):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           mechanisms=frozenset(mechs),
                           voltage_signature=sig, fault_type=ftype)


def sample_macro():
    return MacroResult(
        name="comparator", bbox_area=1000.0, instances=256,
        defects_sprinkled=10000,
        records=(
            rec(60, True, [CurrentMechanism.IVDD],
                VoltageSignature.OUTPUT_STUCK_AT),
            rec(20, False, [CurrentMechanism.IDDQ],
                VoltageSignature.CLOCK_VALUE),
            rec(10, True, [], VoltageSignature.OFFSET),
            rec(10, False, [], VoltageSignature.NONE),
        ))


class TestDistributions:
    def test_voltage_distribution_sums_to_one(self):
        dist = voltage_signature_distribution(sample_macro())
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[VoltageSignature.OUTPUT_STUCK_AT] == \
            pytest.approx(0.6)

    def test_current_distribution_overlapping(self):
        dist = current_signature_distribution(sample_macro())
        assert dist["ivdd"] == pytest.approx(0.6)
        assert dist["iddq"] == pytest.approx(0.2)
        assert dist["none"] == pytest.approx(0.2)


class TestRenderers:
    def test_table1(self):
        classes = collapse([ShortFault(nets=frozenset({"a", "b"}),
                                       layer="metal1", resistance=0.2)])
        text = render_table1(classes)
        assert "short" in text and "100.00" in text

    def test_table2_table3(self):
        m = sample_macro()
        t2 = render_table2(m, m)
        assert "Output Stuck At" in t2 and "60.0" in t2
        t3 = render_table3(m, None)
        assert "IDDQ" in t3 and "n/a" in t3

    def test_fig3(self):
        text = render_fig3(sample_macro())
        assert "missing_codes+ivdd" in text
        assert "total detected" in text

    def test_fig4(self):
        b = CoverageBreakdown(voltage_only=0.2, current_only=0.3,
                              both=0.4, undetected=0.1)
        text = render_fig4(b, b)
        assert "TOTAL COVERAGE" in text
        assert "90.0" in text

    def test_macro_table(self):
        text = render_macro_current_detectability([sample_macro()])
        assert "comparator" in text


class TestPathSmoke:
    """One very small end-to-end run exercising the orchestration."""

    @pytest.fixture(scope="class")
    def result(self):
        config = PathConfig(n_defects=2500, max_classes=6,
                            include_noncat=True)
        return DefectOrientedTestPath(config).run(
            macros=["comparator", "ladder"])

    def test_macros_present(self, result):
        assert set(result.macros) == {"comparator", "ladder"}

    def test_classes_nonempty(self, result):
        assert len(result.macros["comparator"].classes) > 0

    def test_global_coverage_sane(self, result):
        cov = result.global_coverage()
        assert 0.3 <= cov.total <= 1.0
        assert cov.voltage_only + cov.current_only + cov.both + \
            cov.undetected == pytest.approx(1.0)

    def test_noncat_present(self, result):
        assert result.macros["comparator"].noncat_result is not None
        cov = result.global_coverage(noncat=True)
        assert 0.0 <= cov.total <= 1.0

    def test_unknown_macro_rejected(self):
        path = DefectOrientedTestPath(PathConfig(n_defects=100))
        with pytest.raises(ValueError):
            path.run(macros=["fpga"])
