"""Tests for path configuration helpers."""

import pytest

from repro.core.path import PathConfig, fast_config
from repro.testgen import DfTConfig, FULL_DFT, NO_DFT


class TestFastConfig:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        config = fast_config()
        assert config.max_classes is not None
        assert config.n_defects < 25000
        assert config.magnitude_defects is None

    def test_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        config = fast_config()
        assert config.n_defects == 25000
        assert config.magnitude_defects == 2_000_000
        assert config.max_classes is None

    def test_dft_passed_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert fast_config(FULL_DFT).dft == FULL_DFT


class TestPathConfig:
    def test_defaults_are_paper_scale(self):
        config = PathConfig()
        assert config.n_defects == 25000
        assert config.seed == 1995
        assert config.include_noncat
        assert config.dft == NO_DFT
        assert not config.dynamic_test

    def test_frozen(self):
        config = PathConfig()
        with pytest.raises(Exception):
            config.n_defects = 1
