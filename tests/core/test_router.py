"""Unit tests for the shared HTTP router and error envelope."""

import pytest

from repro.core.router import (MethodNotAllowed, RouteNotFound, Router,
                               error_envelope)


def _router():
    router = Router()
    router.add("GET", "/v1/health", lambda: "health")
    router.add("GET", "/v1/dictionaries", lambda: "list")
    router.add("GET", "/v1/dictionaries/<name>", lambda: "get")
    router.add("POST", "/v1/dictionaries/<name>/reload",
               lambda: "reload")
    router.add("POST", "/v1/diagnose", lambda: "diagnose")
    return router


class TestResolve:
    def test_exact_match(self):
        route = _router().resolve("GET", "/v1/health")
        assert route.handler() == "health"
        assert route.params == {}
        assert route.deprecated is False
        assert route.canonical == "/v1/health"

    def test_param_capture(self):
        route = _router().resolve("GET", "/v1/dictionaries/adc")
        assert route.handler() == "get"
        assert route.params == {"name": "adc"}

    def test_nested_param_capture(self):
        route = _router().resolve("POST",
                                  "/v1/dictionaries/adc/reload")
        assert route.params == {"name": "adc"}

    def test_trailing_slash_and_query_string_ignored(self):
        router = _router()
        assert router.resolve("GET", "/v1/health/").handler() == \
            "health"
        assert router.resolve("GET", "/v1/health?verbose=1"
                              ).handler() == "health"

    def test_method_case_insensitive(self):
        assert _router().resolve("get", "/v1/health").handler() == \
            "health"

    def test_unknown_path_raises_not_found(self):
        with pytest.raises(RouteNotFound) as excinfo:
            _router().resolve("GET", "/nope")
        assert excinfo.value.path == "/nope"
        # a parametrised segment must not swallow deeper paths
        with pytest.raises(RouteNotFound):
            _router().resolve("GET", "/v1/dictionaries/a/b/c")

    def test_repeated_slashes_collapse(self):
        # empty segments are dropped, so the doubled form matches the
        # same route as the clean path
        route = _router().resolve("GET", "/v1//dictionaries//adc")
        assert route.params == {"name": "adc"}

    def test_wrong_method_raises_method_not_allowed(self):
        with pytest.raises(MethodNotAllowed) as excinfo:
            _router().resolve("POST", "/v1/health")
        assert excinfo.value.allowed == ("GET",)
        assert excinfo.value.method == "POST"
        with pytest.raises(MethodNotAllowed) as excinfo:
            _router().resolve("GET", "/v1/diagnose")
        assert excinfo.value.allowed == ("POST",)


class TestAliases:
    def test_alias_shares_the_handler_object(self):
        router = _router()
        router.alias("GET", "/health", "/v1/health")
        canonical = router.resolve("GET", "/v1/health")
        alias = router.resolve("GET", "/health")
        assert alias.handler is canonical.handler
        assert alias.deprecated is True
        assert alias.canonical == "/v1/health"
        assert canonical.deprecated is False

    def test_alias_of_unregistered_route_fails(self):
        with pytest.raises(LookupError):
            _router().alias("GET", "/nope", "/v1/nope")

    def test_routes_lists_deprecation(self):
        router = _router()
        router.alias("GET", "/health", "/v1/health")
        routes = router.routes()
        assert ("GET", "/v1/health", False) in routes
        assert ("GET", "/health", True) in routes


class TestErrorEnvelope:
    def test_shape(self):
        assert error_envelope("bad_request", "no queries") == \
            {"error": {"code": "bad_request",
                       "message": "no queries"}}

    def test_coerces_to_str(self):
        body = error_envelope("bad_request", ValueError("boom"))
        assert body["error"]["message"] == "boom"
