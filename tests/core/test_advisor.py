"""Tests for the DfT advisor (escape diagnosis)."""

import pytest

from repro.core.advisor import (EscapeDiagnosis, classify_escape,
                                diagnose_escapes, recommendations,
                                render_advice)
from repro.defects import ShortFault
from repro.defects.collapse import FaultClass
from repro.faultsim import (CurrentMechanism, NearMissShortFault,
                            VoltageSignature)
from repro.macrotest import DetectionRecord


def fc(fault, count=10):
    return FaultClass(representative=fault, count=count)


def short(a, b):
    return ShortFault(nets=frozenset({a, b}), layer="metal1",
                      resistance=0.2)


def rec(detected=False, signature=VoltageSignature.NONE):
    return DetectionRecord(
        count=10, voltage_detected=detected,
        mechanisms=frozenset([CurrentMechanism.IVDD] if detected
                             else []),
        voltage_signature=signature)


class TestClassify:
    def test_twin_bias_bridge(self):
        assert classify_escape(fc(short("vbn1", "vbn2")), rec()) == \
            "similar_signal_bridge"

    def test_clock_value_is_dynamic_only(self):
        assert classify_escape(
            fc(short("phi1", "outp")),
            rec(signature=VoltageSignature.CLOCK_VALUE)) == \
            "dynamic_only"

    def test_supply_loading_masked(self):
        assert classify_escape(fc(short("nleak", "vdd")), rec()) == \
            "masked_supply_current"

    def test_near_miss_is_parametric(self):
        fault = NearMissShortFault(nets=frozenset({"tap3", "tap4"}))
        assert classify_escape(fc(fault), rec()) == "parametric"


class TestDiagnose:
    def test_only_undetected_diagnosed(self):
        classes = [fc(short("vbn1", "vbn2")), fc(short("lp", "ln"))]
        records = [rec(detected=False), rec(detected=True)]
        out = diagnose_escapes(classes, records)
        assert len(out) == 1
        assert out[0].category == "similar_signal_bridge"
        assert "bias-line" in out[0].recommendation

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            diagnose_escapes([fc(short("a", "b"))], [])

    def test_recommendations_weighted(self):
        diagnoses = [
            EscapeDiagnosis(fc(short("vbn1", "vbn2"), count=30),
                            "similar_signal_bridge"),
            EscapeDiagnosis(fc(short("nleak", "vdd"), count=10),
                            "masked_supply_current"),
        ]
        recs = recommendations(diagnoses, total_faults=100)
        assert recs[0][0] == "similar_signal_bridge"
        assert recs[0][1] == pytest.approx(0.30)

    def test_render(self):
        classes = [fc(short("vbn1", "vbn2"))]
        text = render_advice(classes, [rec()], total_faults=100)
        assert "similar_signal_bridge" in text
        assert "re-order" in text

    def test_render_clean(self):
        assert "no DfT action" in render_advice([], [], 10)


class TestOnRealRun:
    def test_advisor_finds_the_papers_measures(self):
        """Pre-DfT, the advisor must independently rediscover the
        paper's two DfT measures from the escape population."""
        from repro.core import DefectOrientedTestPath, PathConfig

        config = PathConfig(n_defects=10000, max_classes=25,
                            include_noncat=False)
        analysis = DefectOrientedTestPath(config).analyze_comparator()
        diagnoses = diagnose_escapes(list(analysis.classes),
                                     list(analysis.result.records))
        categories = {d.category for d in diagnoses}
        # the twin-bias-line bridge is the canonical escape
        assert "similar_signal_bridge" in categories