"""Tests for the command-line interface (cheap commands only)."""

import pytest

from repro.cli import main


def test_cost_command(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_layout_command(capsys):
    assert main(["layout", "biasgen"]) == 0
    out = capsys.readouterr().out
    assert "biasgen" in out
    assert "-" in out  # metal1 glyphs


def test_layout_default_macro(capsys):
    assert main(["layout"]) == 0
    assert "comparator" in capsys.readouterr().out


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig9"])


def test_table1_tiny_budget(capsys):
    assert main(["table1", "--defects", "1500", "--classes", "2"]) == 0
    out = capsys.readouterr().out
    assert "fault type" in out
    assert "short" in out


def test_table1_parallel_jobs_same_artifact(capsys):
    """--jobs must not change the rendered artifact, only the wall
    time; this drives the real pool dispatch end to end."""
    assert main(["table1", "--defects", "1500", "--classes", "2",
                 "--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(["table1", "--defects", "1500", "--classes", "2",
                 "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_seed_plumbed_into_config():
    from repro.cli import _config

    class Args:
        full = False
        defects = 1500
        classes = 2
        seed = 42

    config = _config(Args())
    assert config.seed == 42
    Args.full = True
    assert _config(Args()).seed == 42


def test_jobs_and_cache_flags_plumbed():
    from repro.cli import _options

    class Args:
        jobs = 3
        cache_dir = "/tmp/somewhere"
        resume = True

    options = _options(Args())
    assert options.resolved_jobs() == 3
    assert str(options.resolved_cache_dir()) == "/tmp/somewhere"
    assert options.resume


def test_campaign_command_reports_metrics(capsys, tmp_path):
    assert main(["campaign", "--defects", "1200", "--classes", "2",
                 "--cache-dir", str(tmp_path),
                 "--metrics-out", str(tmp_path / "metrics.json")]) == 0
    out = capsys.readouterr().out
    assert "coverage:" in out
    assert "cache-hit rate" in out
    import json
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics["completed"] == metrics["total_tasks"] > 0
