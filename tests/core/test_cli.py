"""Tests for the command-line interface (cheap commands only)."""

import pytest

from repro.cli import main


def test_cost_command(capsys):
    assert main(["cost"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_layout_command(capsys):
    assert main(["layout", "biasgen"]) == 0
    out = capsys.readouterr().out
    assert "biasgen" in out
    assert "-" in out  # metal1 glyphs


def test_layout_default_macro(capsys):
    assert main(["layout"]) == 0
    assert "comparator" in capsys.readouterr().out


def test_unknown_command_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig9"])


def test_table1_tiny_budget(capsys):
    assert main(["table1", "--defects", "1500", "--classes", "2"]) == 0
    out = capsys.readouterr().out
    assert "fault type" in out
    assert "short" in out
