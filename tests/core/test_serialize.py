"""Tests for path-result serialisation."""

import json

import pytest

from repro.core.serialize import (SerializeError, load_macro_results,
                                  macro_from_dict, macro_to_dict,
                                  record_from_dict, record_to_dict,
                                  save_macro_results, save_path_result)
from repro.faultsim import CurrentMechanism, VoltageSignature
from repro.macrotest import (DetectionRecord, MacroResult,
                             global_breakdown, macro_breakdown)


def sample_record():
    return DetectionRecord(
        count=7, voltage_detected=True,
        mechanisms=frozenset({CurrentMechanism.IDDQ,
                              CurrentMechanism.IVDD}),
        voltage_signature=VoltageSignature.OUTPUT_STUCK_AT,
        fault_type="short")


def sample_macro():
    return MacroResult(name="comparator", bbox_area=40000.0,
                       instances=256, defects_sprinkled=25000,
                       records=(sample_record(),
                                DetectionRecord(
                                    count=3, voltage_detected=False,
                                    mechanisms=frozenset())))


class TestRecordRoundTrip:
    def test_roundtrip(self):
        rec = sample_record()
        assert record_from_dict(record_to_dict(rec)) == rec

    def test_none_signature(self):
        rec = DetectionRecord(count=1, voltage_detected=False,
                              mechanisms=frozenset())
        assert record_from_dict(record_to_dict(rec)) == rec

    def test_bad_mechanism_rejected(self):
        data = record_to_dict(sample_record())
        data["mechanisms"] = ["teleport"]
        with pytest.raises(SerializeError):
            record_from_dict(data)


class TestMacroRoundTrip:
    def test_roundtrip_preserves_breakdown(self):
        m = sample_macro()
        restored = macro_from_dict(macro_to_dict(m))
        assert restored == m
        assert macro_breakdown(restored) == macro_breakdown(m)

    def test_missing_field_rejected(self):
        data = macro_to_dict(sample_macro())
        del data["instances"]
        with pytest.raises(SerializeError):
            macro_from_dict(data)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "run.json"
        results = {"comparator": {"cat": sample_macro(), "noncat": None}}
        save_macro_results(results, path, metadata={"seed": 1995})
        loaded = load_macro_results(path)
        assert loaded["comparator"]["cat"] == sample_macro()
        assert loaded["comparator"]["noncat"] is None

    def test_metadata_persisted(self, tmp_path):
        path = tmp_path / "run.json"
        save_macro_results({"m": {"cat": sample_macro()}}, path,
                           metadata={"dft": "dft:none"})
        payload = json.loads(path.read_text())
        assert payload["metadata"]["dft"] == "dft:none"
        assert payload["format_version"] == 1

    def test_version_checked(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"format_version": 99, "macros": {}}))
        with pytest.raises(SerializeError):
            load_macro_results(path)

    def test_unreadable_rejected(self, tmp_path):
        with pytest.raises(SerializeError):
            load_macro_results(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SerializeError):
            load_macro_results(bad)


class TestPathResultSave:
    def test_save_path_result(self, tmp_path):
        from repro.core import DefectOrientedTestPath, PathConfig
        config = PathConfig(n_defects=1500, max_classes=2,
                            include_noncat=False)
        result = DefectOrientedTestPath(config).run(macros=["ladder"])
        path = tmp_path / "run.json"
        save_path_result(result, path)
        loaded = load_macro_results(path)
        original = result.macros["ladder"].result
        assert loaded["ladder"]["cat"] == original
        # coverage recomputed from the loaded data matches
        assert global_breakdown([loaded["ladder"]["cat"]]) == \
            global_breakdown([original])


class TestDictContract:
    """The dataclasses own their serialisation; serialize.py only adds
    the SerializeError contract on top."""

    def test_record_methods_are_canonical(self):
        rec = sample_record()
        assert record_to_dict(rec) == rec.to_dict()
        assert DetectionRecord.from_dict(rec.to_dict()) == rec

    def test_macro_methods_are_canonical(self):
        m = sample_macro()
        assert macro_to_dict(m) == m.to_dict()
        assert MacroResult.from_dict(m.to_dict()) == m

    def test_path_config_roundtrip(self):
        from repro.core import PathConfig
        from repro.testgen import FULL_DFT
        config = PathConfig(n_defects=1234, magnitude_defects=9999,
                            seed=7, dft=FULL_DFT, include_noncat=False,
                            max_classes=11, dynamic_test=True,
                            dt=2e-9, big_probe=0.2, small_probe=4e-3)
        assert PathConfig.from_dict(config.to_dict()) == config

    def test_path_config_json_stable(self):
        from repro.core import PathConfig
        blob = json.dumps(PathConfig().to_dict(), sort_keys=True)
        restored = PathConfig.from_dict(json.loads(blob))
        assert restored == PathConfig()


class TestPathResultRoundTrip:
    def test_load_path_result(self, tmp_path):
        from repro.core import (DefectOrientedTestPath, PathConfig,
                                load_path_result)
        config = PathConfig(n_defects=1500, max_classes=2,
                            include_noncat=False)
        result = DefectOrientedTestPath(config).run(macros=["ladder"])
        path = tmp_path / "run.json"
        save_path_result(result, path)
        loaded = load_path_result(path)
        assert loaded.config == config
        assert loaded.macros["ladder"].result == \
            result.macros["ladder"].result
        assert loaded.macros["ladder"].noncat_result is None
        # classes are not round-tripped (re-derivable from config)
        assert loaded.macros["ladder"].classes == ()
        assert loaded.global_coverage() == result.global_coverage()

    def test_load_rejects_bad_payload(self, tmp_path):
        from repro.core import load_path_result
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format_version": 1,
                                   "metadata": {},
                                   "macros": {"x": {"cat": {}}}}))
        with pytest.raises(SerializeError):
            load_path_result(bad)
