"""Tests for fault-signature propagation through the behavioral ADC."""

import pytest

from repro.adc.behavioral import ComparatorBehavior
from repro.defects import ShortFault
from repro.faultsim import (CurrentMechanism, Measurement,
                            SignatureResult, VoltageSignature)
from repro.macrotest import (comparator_behavior_for, fault_shared_nets,
                             propagate_bank_behavior,
                             propagate_clock_fault,
                             propagate_comparator_fault,
                             propagate_ladder_fault)
from repro.adc.ladder import nominal_tap_voltages


def meas(decision=True, resolved=True):
    z = (0.0, 0.0, 0.0)
    return Measurement(decision=decision, ivdd=z, iddq=z, iin=z,
                       ivref=z, ibias=z, clock_deviation=0.0,
                       resolved=resolved)


def sig(voltage, decision=True, offset_sign=0):
    return SignatureResult(voltage=voltage, offset_sign=offset_sign,
                           mechanisms=frozenset(),
                           measurements={"above": meas(decision),
                                         "below": meas(decision)})


def local_fault():
    return ShortFault(nets=frozenset({"outp", "outn"}), layer="metal1",
                      resistance=0.2)


def shared_fault():
    return ShortFault(nets=frozenset({"phi1", "outp"}), layer="metal1",
                      resistance=0.2)


class TestSharedNets:
    def test_local(self):
        assert fault_shared_nets(local_fault()) == set()

    def test_shared(self):
        assert fault_shared_nets(shared_fault()) == {"phi1"}


class TestBehaviorMapping:
    def test_stuck(self):
        b = comparator_behavior_for(sig(VoltageSignature.OUTPUT_STUCK_AT,
                                        decision=True))
        assert b.stuck is True

    def test_offset_sign(self):
        b = comparator_behavior_for(sig(VoltageSignature.OFFSET,
                                        offset_sign=-1))
        assert b.offset < -0.008

    def test_clock_value_is_benign_statically(self):
        b = comparator_behavior_for(sig(VoltageSignature.CLOCK_VALUE))
        assert b.stuck is None and b.offset == 0.0
        assert b.clock_degraded

    def test_none_is_nominal(self):
        assert comparator_behavior_for(sig(VoltageSignature.NONE)) == \
            ComparatorBehavior()


class TestComparatorPropagation:
    def test_stuck_local_detected(self):
        detected = propagate_comparator_fault(
            sig(VoltageSignature.OUTPUT_STUCK_AT), local_fault())
        assert detected

    def test_offset_detected(self):
        detected = propagate_comparator_fault(
            sig(VoltageSignature.OFFSET, offset_sign=+1), local_fault())
        assert detected

    def test_clock_value_not_detected(self):
        """The paper's point: clock-value faults degrade dynamics only,
        so the static missing-code test cannot see them."""
        detected = propagate_comparator_fault(
            sig(VoltageSignature.CLOCK_VALUE), local_fault())
        assert not detected

    def test_none_not_detected(self):
        assert not propagate_comparator_fault(
            sig(VoltageSignature.NONE), local_fault())

    def test_shared_fault_hits_whole_bank(self):
        detected = propagate_comparator_fault(
            sig(VoltageSignature.OUTPUT_STUCK_AT), shared_fault())
        assert detected


class TestOtherMacroPropagation:
    def test_ladder_collapsed_span(self):
        taps = nominal_tap_voltages().copy()
        taps[100:110] = taps[100]
        assert propagate_ladder_fault(taps)

    def test_ladder_nominal_clean(self):
        assert not propagate_ladder_fault(nominal_tap_voltages())

    def test_dead_clock_detected(self):
        assert propagate_clock_fault({"phi2": False}, degraded=False)

    def test_degraded_clock_not_detected(self):
        assert not propagate_clock_fault({}, degraded=True)

    def test_bank_stuck_detected(self):
        assert propagate_bank_behavior(ComparatorBehavior(stuck=True))

    def test_bank_nominal_clean(self):
        assert not propagate_bank_behavior(ComparatorBehavior())
