"""Tests for coverage accounting and global scaling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faultsim import CurrentMechanism, VoltageSignature
from repro.macrotest import (CoverageBreakdown, DetectionRecord,
                             MacroResult, global_breakdown,
                             macro_breakdown, mechanism_overlap,
                             standard_partition)


def rec(count=1, voltage=False, mechs=()):
    return DetectionRecord(count=count, voltage_detected=voltage,
                           mechanisms=frozenset(mechs))


def macro(name="m", records=(), area=100.0, instances=1, defects=1000):
    return MacroResult(name=name, bbox_area=area, instances=instances,
                       defects_sprinkled=defects, records=tuple(records))


class TestDetectionRecord:
    def test_flags(self):
        r = rec(voltage=True, mechs=[CurrentMechanism.IVDD])
        assert r.voltage_detected and r.current_detected and r.detected
        assert not rec().detected


class TestMacroResult:
    def test_fault_yield_and_weight(self):
        m = macro(records=[rec(count=10), rec(count=15)], area=200.0,
                  instances=4, defects=1000)
        assert m.total_faults == 25
        assert m.fault_yield == pytest.approx(0.025)
        assert m.weight == pytest.approx(4 * 200.0 * 0.025)

    def test_zero_defects_rejected(self):
        m = macro(defects=0, records=[rec()])
        with pytest.raises(ValueError):
            m.fault_yield


class TestBreakdown:
    def sample(self):
        return macro(records=[
            rec(count=30, voltage=True),                       # v only
            rec(count=20, mechs=[CurrentMechanism.IVDD]),      # c only
            rec(count=40, voltage=True,
                mechs=[CurrentMechanism.IDDQ]),                # both
            rec(count=10),                                     # escape
        ])

    def test_partition_sums_to_one(self):
        b = macro_breakdown(self.sample())
        assert b.voltage_only + b.current_only + b.both + \
            b.undetected == pytest.approx(1.0)

    def test_values(self):
        b = macro_breakdown(self.sample())
        assert b.voltage_only == pytest.approx(0.30)
        assert b.current_only == pytest.approx(0.20)
        assert b.both == pytest.approx(0.40)
        assert b.voltage == pytest.approx(0.70)
        assert b.current == pytest.approx(0.60)
        assert b.total == pytest.approx(0.90)

    def test_percentages(self):
        pct = macro_breakdown(self.sample()).as_percentages()
        assert pct["total"] == pytest.approx(90.0)

    @given(st.lists(st.tuples(st.integers(1, 50), st.booleans(),
                              st.booleans()), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_partition_invariant(self, entries):
        records = [rec(count=c, voltage=v,
                       mechs=[CurrentMechanism.IVDD] if cur else [])
                   for c, v, cur in entries]
        b = macro_breakdown(macro(records=records))
        assert b.voltage_only + b.current_only + b.both + \
            b.undetected == pytest.approx(1.0)
        assert 0.0 <= b.total <= 1.0 + 1e-9


class TestGlobalBreakdown:
    def test_weighting(self):
        # macro A: everything detected, weight 3x; macro B: nothing
        a = macro(name="a", records=[rec(count=10, voltage=True)],
                  area=300.0, instances=1, defects=1000)
        b = macro(name="b", records=[rec(count=10)], area=100.0,
                  instances=1, defects=1000)
        g = global_breakdown([a, b])
        assert g.total == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            global_breakdown([])


class TestMechanismOverlap:
    def test_combination_keys(self):
        m = macro(records=[
            rec(count=50, voltage=True, mechs=[CurrentMechanism.IVDD]),
            rec(count=30, mechs=[CurrentMechanism.IDDQ]),
            rec(count=20),
        ])
        overlap = mechanism_overlap(m)
        assert overlap["missing_codes+ivdd"] == pytest.approx(0.5)
        assert overlap["iddq"] == pytest.approx(0.3)
        assert overlap["undetected"] == pytest.approx(0.2)
        assert overlap["only:iddq"] == pytest.approx(0.3)
        assert overlap["only:missing_codes"] == pytest.approx(0.0)


class TestPartition:
    def test_standard_partition_macros(self):
        p = standard_partition()
        assert set(p) == {"comparator", "ladder", "biasgen", "clockgen",
                          "decoder"}
        assert p["comparator"].instances == 256
        assert p["ladder"].instances == 16

    def test_areas_positive(self):
        p = standard_partition()
        for descriptor in p.values():
            assert descriptor.area() > 0

    def test_comparators_dominate_area(self):
        """Paper: 'most of the ADC area is covered by these cells'."""
        p = standard_partition()
        areas = {name: d.area() * d.instances for name, d in p.items()}
        assert areas["comparator"] > 0.5 * sum(areas.values())
