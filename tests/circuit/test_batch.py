"""Tests for the batched MNA kernel.

The kernel's contract is *bit-identity*: a batched run produces exactly
the bytes an all-scalar run would, for every lane, including which
lanes fail and with what error.  These tests exercise that contract on
linear lanes (property-based), on the real nonlinear comparator
testbench, on mixed-structure lane sets, on a sabotaged kernel (scalar
fallback), and at the assembly level (compiled contribution program vs
reference element-by-element stamping).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.comparator import (CLOCK_PERIOD, build_testbench,
                                  regeneration_windows)
from repro.adc.process import reduced_corners
from repro.circuit import (Capacitor, Circuit, Mosfet, MosParams, Pulse,
                           Resistor, VoltageSource, operating_point,
                           transient)
from repro.circuit import batch as batch_mod
from repro.circuit.batch import (BatchedMNASystem, BatchUnsupported,
                                 operating_point_lanes,
                                 structure_signature, transient_batch,
                                 transient_lanes)
from repro.circuit.batch import _assemble, _BatchProgram, _build_slots
from repro.circuit.dc import ConvergenceError
from repro.circuit.mna import StampContext
from repro.circuit.transient import TransientResult

NMOS = MosParams(kp=60e-6, vto=0.7, lam=0.05, gamma=0.4, phi=0.6,
                 cox=1.7e-3, cov=3e-10)
PMOS = MosParams(kp=25e-6, vto=-0.8, lam=0.06, gamma=0.5, phi=0.6,
                 cox=1.7e-3, cov=3e-10)


def rc_lane(r, c_val, amp):
    c = Circuit("rc")
    c.add(VoltageSource("V1", "in", "gnd",
                        Pulse(0, amp, 0, 1e-9, 1e-9, 10e-3, 20e-3)))
    c.add(Resistor("R1", "in", "out", r))
    c.add(Capacitor("C1", "out", "gnd", c_val))
    return c


def inverter_lane(nmos=NMOS, pmos=PMOS, load=50e-15):
    c = Circuit("inv")
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VIN", "in", "gnd",
                        Pulse(0, 5.0, 2e-9, 1e-9, 1e-9, 10e-9, 20e-9)))
    c.add(Mosfet("MN", "out", "in", "gnd", "gnd", nmos, w=4e-6,
                 l=1e-6))
    c.add(Mosfet("MP", "out", "in", "vdd", "vdd", pmos, w=8e-6,
                 l=1e-6))
    c.add(Capacitor("CL", "out", "gnd", load))
    return c


def assert_lanes_identical(batched, scalar):
    assert len(batched) == len(scalar)
    for b, s in zip(batched, scalar):
        if isinstance(s, ConvergenceError):
            assert isinstance(b, ConvergenceError)
            assert str(b) == str(s)
            continue
        assert isinstance(b, TransientResult)
        assert b.times.tobytes() == s.times.tobytes()
        assert b.xs.tobytes() == s.xs.tobytes()


class TestLinearLanesBitIdentical:
    @given(st.lists(st.tuples(
        st.floats(min_value=100.0, max_value=1e5),
        st.floats(min_value=1e-9, max_value=1e-6),
        st.floats(min_value=-5.0, max_value=5.0)),
        min_size=2, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_random_rc_lanes(self, lanes):
        """Same topology, random per-lane values: batched == scalar,
        bit for bit."""
        circuits = [rc_lane(*lane) for lane in lanes]
        batched = transient_lanes(circuits, tstop=2e-4, dt=2e-6,
                                  batch=True)
        scalar = transient_lanes(circuits, tstop=2e-4, dt=2e-6,
                                 batch=False)
        assert_lanes_identical(batched, scalar)

    def test_trap_method(self):
        circuits = [rc_lane(1e3, 1e-7, a) for a in (1.0, -2.0, 0.5)]
        batched = transient_lanes(circuits, tstop=1e-4, dt=1e-6,
                                  method="trap", batch=True)
        scalar = transient_lanes(circuits, tstop=1e-4, dt=1e-6,
                                 method="trap", batch=False)
        assert_lanes_identical(batched, scalar)


class TestNonlinearLanesBitIdentical:
    def test_inverter_model_variants(self):
        """Mosfet lanes with per-lane model parameters (the reduced
        corner sweep's shape) stay bit-identical through the sharp
        switching transients."""
        variants = [
            inverter_lane(),
            inverter_lane(nmos=NMOS.scaled(kp_scale=1.3,
                                           vto_shift=-0.1)),
            inverter_lane(pmos=PMOS.scaled(kp_scale=0.8,
                                           vto_shift=0.1)),
            inverter_lane(load=200e-15),
        ]
        batched = transient_lanes(variants, tstop=20e-9, dt=0.2e-9,
                                  batch=True)
        scalar = transient_lanes(variants, tstop=20e-9, dt=0.2e-9,
                                 batch=False)
        assert_lanes_identical(batched, scalar)

    def test_comparator_corner_sweep(self):
        """The engine's real workload: comparator testbenches over
        corners x polarities, with regeneration fine windows."""
        circuits = []
        for process in reduced_corners()[:2]:
            for offset in (0.1, -0.1):
                tb = build_testbench(process=process, vin=2.5 + offset,
                                     vref=2.5)
                circuits.append(tb.circuit)
        windows = regeneration_windows(CLOCK_PERIOD, 1)
        batched = transient_lanes(circuits, tstop=CLOCK_PERIOD,
                                  dt=1e-9, fine_windows=windows,
                                  batch=True)
        scalar = transient_lanes(circuits, tstop=CLOCK_PERIOD,
                                 dt=1e-9, fine_windows=windows,
                                 batch=False)
        assert_lanes_identical(batched, scalar)


class TestConvergenceMasking:
    def test_stiff_lane_masks_independently(self):
        """One lane orders of magnitude stiffer than the rest: its
        Newton iterations converge later, and per-lane masking must
        keep every lane identical to its scalar run."""
        circuits = [rc_lane(1e3, 1e-7, 1.0),
                    rc_lane(1e3, 1e-12, 1.0),  # tau 1e5 x smaller
                    rc_lane(1e5, 1e-6, -3.0)]
        batched = transient_lanes(circuits, tstop=1e-4, dt=1e-6,
                                  batch=True)
        scalar = transient_lanes(circuits, tstop=1e-4, dt=1e-6,
                                 batch=False)
        assert_lanes_identical(batched, scalar)

    def test_failed_lane_falls_back_to_scalar(self, monkeypatch):
        """A lane the kernel gives up on is re-run scalar, so the
        batched output still equals the all-scalar output."""
        real = batch_mod._solve_timepoint_batch

        def sabotaged(program, system, X_prev, t, h, method,
                      cap_currents, want):
            X_next, solved = real(program, system, X_prev, t, h,
                                  method, cap_currents, want)
            solved = solved.copy()
            solved[0] = False  # lane 0 never converges in the kernel
            return X_next, solved

        monkeypatch.setattr(batch_mod, "_solve_timepoint_batch",
                            sabotaged)
        circuits = [rc_lane(1e3, 1e-7, a) for a in (1.0, 2.0, -1.0)]
        batched = transient_lanes(circuits, tstop=1e-4, dt=1e-6,
                                  batch=True)
        monkeypatch.undo()
        scalar = transient_lanes(circuits, tstop=1e-4, dt=1e-6,
                                 batch=False)
        assert all(isinstance(b, TransientResult) for b in batched)
        assert_lanes_identical(batched, scalar)


class TestLaneGrouping:
    def test_mixed_structures_keep_order(self):
        """Lanes of different topologies group independently and come
        back in submission order."""
        circuits = [rc_lane(1e3, 1e-7, 1.0), inverter_lane(),
                    rc_lane(2e3, 2e-7, -1.0), inverter_lane(load=1e-13),
                    rc_lane(5e2, 1e-8, 2.0)]
        batched = transient_lanes(circuits, tstop=5e-9, dt=0.5e-9,
                                  batch=True)
        scalar = transient_lanes(circuits, tstop=5e-9, dt=0.5e-9,
                                 batch=False)
        assert_lanes_identical(batched, scalar)

    def test_structure_signature_values_irrelevant(self):
        assert structure_signature(rc_lane(1e3, 1e-7, 1.0)) == \
            structure_signature(rc_lane(9e4, 3e-8, -2.0))
        assert structure_signature(rc_lane(1e3, 1e-7, 1.0)) != \
            structure_signature(inverter_lane())

    def test_batch_rejects_mixed_structures(self):
        with pytest.raises(ValueError):
            transient_batch([rc_lane(1e3, 1e-7, 1.0), inverter_lane()],
                            tstop=1e-6, dt=1e-7)


class TestOperatingPointLanes:
    def test_dc_parity_with_scalar(self):
        circuits = [inverter_lane(),
                    inverter_lane(nmos=NMOS.scaled(kp_scale=1.2,
                                                   vto_shift=-0.05)),
                    inverter_lane(load=1e-13)]
        lanes = operating_point_lanes(circuits, batch=True)
        for c, lane in zip(circuits, lanes):
            ref = operating_point(c)
            assert lane.x.tobytes() == ref.x.tobytes()


class TestProgramAssembly:
    def test_program_matches_reference_stamping(self):
        """The compiled contribution program reproduces the reference
        element-by-element stamping bit for bit, dc and tran."""
        circuits = []
        for process in reduced_corners()[:2]:
            tb = build_testbench(process=process, vin=2.6, vref=2.5)
            circuits.append(tb.circuit)
        compiled = circuits[0].compile()
        nlanes, n = len(circuits), compiled.size
        system_ref = BatchedMNASystem(compiled, nlanes)
        system_prog = BatchedMNASystem(compiled, nlanes)
        slots = _build_slots(circuits, system_ref)
        rng = np.random.default_rng(7)
        for tran in (False, True):
            program = _BatchProgram(circuits, system_prog, tran=tran)
            for _ in range(3):
                X = rng.normal(scale=2.0, size=(nlanes, n))
                if tran:
                    cap_currents = {
                        el.name: rng.normal(size=nlanes) * 1e-6
                        for el, _ in slots
                        if type(el) is Capacitor}
                    ctx = StampContext(
                        mode="tran", time=3.7e-8, dt=1e-9,
                        x_prev=rng.normal(scale=2.0, size=(nlanes, n)),
                        gmin=1e-12, method="trap",
                        cap_currents=cap_currents)
                else:
                    ctx = StampContext(mode="dc", time=0.0, gmin=1e-4,
                                       source_scale=0.6)
                _assemble(system_ref, slots, X, ctx)
                G_ref = system_ref.G.copy()
                b_ref = system_ref.b.copy()
                program.assemble(system_prog, X, ctx)
                assert G_ref.tobytes() == system_prog.G.tobytes()
                assert b_ref.tobytes() == system_prog.b.tobytes()

    def test_unknown_element_unsupported(self):
        class Weird(Resistor):
            pass

        c = Circuit("weird")
        c.add(VoltageSource("V1", "a", "gnd", 1.0))
        c.add(Weird("R1", "a", "gnd", 1e3))
        compiled = c.compile()
        system = BatchedMNASystem(compiled, 2)
        with pytest.raises(BatchUnsupported):
            _BatchProgram([c, c], system, tran=False)
