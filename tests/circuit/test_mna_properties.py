"""Property-based tests for MNA assembly and solve.

The key physical invariants: Kirchhoff's current law holds at every node
of the solved system, resistive networks obey superposition, and random
resistor ladders match their analytic series/parallel reduction.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (Circuit, MNASystem, Resistor, StampContext,
                           VoltageSource, operating_point)

resistances = st.floats(min_value=1.0, max_value=1e6)


@given(st.lists(resistances, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_series_resistors_reduce(values):
    """A series chain driven by 1 V carries V/sum(R)."""
    c = Circuit()
    c.add(VoltageSource("V1", "n0", "gnd", 1.0))
    for k, r in enumerate(values):
        bottom = "gnd" if k == len(values) - 1 else f"n{k + 1}"
        c.add(Resistor(f"R{k}", f"n{k}", bottom, r))
    op = operating_point(c)
    assert -op.current("V1") == pytest.approx(1.0 / sum(values), rel=1e-8)


@given(st.lists(resistances, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_parallel_resistors_reduce(values):
    c = Circuit()
    c.add(VoltageSource("V1", "top", "gnd", 1.0))
    for k, r in enumerate(values):
        c.add(Resistor(f"R{k}", "top", "gnd", r))
    op = operating_point(c)
    g_total = sum(1.0 / r for r in values)
    assert -op.current("V1") == pytest.approx(g_total, rel=1e-8)


@given(st.lists(resistances, min_size=2, max_size=6),
       st.floats(min_value=-10, max_value=10),
       st.floats(min_value=-10, max_value=10))
@settings(max_examples=30, deadline=None)
def test_superposition(values, v1, v2):
    """Linear network: response to (v1 + v2) = response(v1) + response(v2)."""
    def solve(va, vb):
        c = Circuit()
        c.add(VoltageSource("VA", "a", "gnd", va))
        c.add(VoltageSource("VB", "b", "gnd", vb))
        for k, r in enumerate(values):
            left = "a" if k % 2 == 0 else "b"
            c.add(Resistor(f"R{k}", left, "mid", r))
        c.add(Resistor("RL", "mid", "gnd", 1000.0))
        return operating_point(c).voltage("mid")

    lhs = solve(v1, v2)
    rhs = solve(v1, 0.0) + solve(0.0, v2)
    assert lhs == pytest.approx(rhs, abs=1e-8)


@given(st.lists(resistances, min_size=2, max_size=10))
@settings(max_examples=40, deadline=None)
def test_kcl_residual_zero(values):
    """G @ x - b vanishes at the solution (assembled residual check)."""
    c = Circuit()
    c.add(VoltageSource("V1", "n0", "gnd", 5.0))
    for k, r in enumerate(values):
        bottom = "gnd" if k == len(values) - 1 else f"n{k + 1}"
        c.add(Resistor(f"R{k}", f"n{k}", bottom, r))
    op = operating_point(c)
    system = MNASystem(op.compiled)
    system.assemble(c, op.x, StampContext(mode="dc"))
    residual = system.G @ op.x - system.b
    assert np.max(np.abs(residual)) < 1e-9


@given(st.integers(min_value=2, max_value=64))
@settings(max_examples=20, deadline=None)
def test_voltage_ladder_monotone(n):
    """An n-tap equal-resistor ladder produces monotone tap voltages -
    the invariant the ADC reference ladder depends on."""
    c = Circuit()
    c.add(VoltageSource("VREF", "t0", "gnd", 2.0))
    for k in range(n):
        bottom = "gnd" if k == n - 1 else f"t{k + 1}"
        c.add(Resistor(f"R{k}", f"t{k}", bottom, 100.0))
    op = operating_point(c)
    taps = [op.voltage(f"t{k}") for k in range(n)]
    assert all(a > b for a, b in zip(taps, taps[1:]))
    assert taps[0] == pytest.approx(2.0)


def test_ground_row_dropped():
    """Stamps touching ground must not corrupt the system."""
    c = Circuit()
    c.add(VoltageSource("V1", "a", "gnd", 1.0))
    c.add(Resistor("R1", "a", "gnd", 10.0))
    comp = c.compile()
    system = MNASystem(comp)
    system.assemble(c, np.zeros(comp.size), StampContext())
    x = system.solve()
    assert x[comp.index_of("a")] == pytest.approx(1.0)
