"""Tests for hierarchical subcircuits and SPICE .subckt support."""

import pytest

from repro.circuit import (Circuit, CircuitError, Resistor,
                           VoltageSource, operating_point, parse_netlist)
from repro.circuit.hierarchy import Subcircuit, flatten, instantiate
from repro.circuit.spicefmt import SpiceFormatError


def divider_template():
    c = Circuit("div")
    c.add(Resistor("RT", "top", "mid", 1000.0))
    c.add(Resistor("RB", "mid", "gnd", 1000.0))
    return Subcircuit(name="div", ports=["top", "mid"], circuit=c)


class TestSubcircuit:
    def test_internal_nodes(self):
        sub = divider_template()
        assert sub.internal_nodes() == []
        c = Circuit()
        c.add(Resistor("R1", "a", "x", 1.0))
        c.add(Resistor("R2", "x", "gnd", 1.0))
        sub2 = Subcircuit(name="s", ports=["a"], circuit=c)
        assert sub2.internal_nodes() == ["x"]

    def test_missing_port_rejected(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "gnd", 1.0))
        with pytest.raises(CircuitError):
            Subcircuit(name="s", ports=["a", "ghost"], circuit=c)

    def test_duplicate_ports_rejected(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "gnd", 1.0))
        with pytest.raises(CircuitError):
            Subcircuit(name="s", ports=["a", "a"], circuit=c)


class TestInstantiate:
    def test_two_instances_stack(self):
        parent = Circuit("stack")
        parent.add(VoltageSource("V1", "in", "gnd", 8.0))
        sub = divider_template()
        instantiate(parent, sub, "X1", ["in", "n1"])
        instantiate(parent, sub, "X2", ["n1", "n2"])
        op = operating_point(parent)
        # n1 loads: X1.RB (1k) || X2's 2k chain = 2/3 k; with X1.RT (1k)
        # above: v(n1) = 8 * (2/3) / (1 + 2/3) = 3.2 V
        assert op.voltage("n1") == pytest.approx(3.2, rel=1e-6)
        assert op.voltage("n2") == pytest.approx(1.6, rel=1e-6)

    def test_names_prefixed_no_collisions(self):
        parent = Circuit()
        sub = divider_template()
        instantiate(parent, sub, "A", ["p", "q"])
        instantiate(parent, sub, "B", ["p", "r"])
        assert "A.RT" in parent and "B.RT" in parent

    def test_internal_nodes_isolated(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "x", 1.0))
        c.add(Resistor("R2", "x", "gnd", 1.0))
        sub = Subcircuit(name="s", ports=["a"], circuit=c)
        parent = Circuit()
        instantiate(parent, sub, "U1", ["n"])
        instantiate(parent, sub, "U2", ["n"])
        assert "U1.x" in parent.nodes()
        assert "U2.x" in parent.nodes()

    def test_arity_checked(self):
        parent = Circuit()
        with pytest.raises(CircuitError):
            instantiate(parent, divider_template(), "X1", ["only_one"])

    def test_template_unmodified(self):
        sub = divider_template()
        parent = Circuit()
        instantiate(parent, sub, "X1", ["a", "b"])
        assert sub.circuit.element("RT").nodes == ["top", "mid"]

    def test_flatten(self):
        sub = divider_template()
        parent = flatten("two", [(sub, "X1", ["a", "b"]),
                                 (sub, "X2", ["b", "c"])])
        assert len(parent) == 4


class TestSpiceSubckt:
    DECK = """hierarchy test
.subckt div top mid
RT top mid 1k
RB mid 0 1k
.ends
V1 in 0 8
Xa in n1 div
Xb n1 n2 div
.end
"""

    def test_parse_and_solve(self):
        c = parse_netlist(self.DECK)
        assert "Xa.RT" in c
        op = operating_point(c)
        assert op.voltage("n1") == pytest.approx(3.2, rel=1e-6)

    def test_unknown_subckt_rejected(self):
        with pytest.raises(SpiceFormatError):
            parse_netlist("t\nX1 a b ghost\n.end\n")

    def test_unclosed_subckt_rejected(self):
        with pytest.raises(SpiceFormatError):
            parse_netlist("t\n.subckt s a\nR1 a 0 1k\n.end\n")

    def test_ends_without_subckt_rejected(self):
        with pytest.raises(SpiceFormatError):
            parse_netlist("t\n.ends\n.end\n")

    def test_subckt_using_earlier_subckt(self):
        deck = """nested
.subckt half top mid
R1 top mid 1k
.ends
.subckt full a b
X1 a m half
X2 m b half
.ends
V1 in 0 2
Xtop in 0 full
.end
"""
        c = parse_netlist(deck)
        op = operating_point(c)
        assert -op.current("V1") == pytest.approx(1e-3, rel=1e-6)