"""Tests for waveform measurement utilities."""

import math

import numpy as np
import pytest

from repro.circuit.measure import (MeasurementError, crossing_times,
                                   duty_cycle, fall_time, overshoot,
                                   period, rise_time, settling_time,
                                   slew_rate)


def ramp_step(tau=1e-6, tstop=10e-6, n=2000):
    """First-order step response 0 -> 1."""
    t = np.linspace(0, tstop, n)
    return t, 1.0 - np.exp(-t / tau)


def square_wave(period_s=1e-6, duty=0.25, cycles=5, n=5000):
    t = np.linspace(0, cycles * period_s, n)
    v = ((t % period_s) < duty * period_s).astype(float)
    return t, v


class TestCrossings:
    def test_single_rising(self):
        t, v = ramp_step()
        rises = crossing_times(t, v, 0.5, "rising")
        assert len(rises) == 1
        assert rises[0] == pytest.approx(1e-6 * math.log(2), rel=0.01)

    def test_direction_filter(self):
        t, v = square_wave()
        rising = crossing_times(t, v, 0.5, "rising")
        falling = crossing_times(t, v, 0.5, "falling")
        both = crossing_times(t, v, 0.5, "both")
        assert len(both) == len(rising) + len(falling)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            crossing_times([0, 1], [0, 1], 0.5, "sideways")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            crossing_times([0.0], [1.0], 0.5)


class TestEdges:
    def test_rise_time_exponential(self):
        """10-90 % rise of a first-order step is tau * ln 9."""
        t, v = ramp_step(tau=1e-6)
        assert rise_time(t, v) == pytest.approx(1e-6 * math.log(9),
                                                rel=0.02)

    def test_fall_time(self):
        t, v = ramp_step(tau=1e-6)
        assert fall_time(t, 1.0 - v) == pytest.approx(
            1e-6 * math.log(9), rel=0.02)

    def test_no_edge_raises(self):
        with pytest.raises(MeasurementError):
            rise_time([0, 1, 2], [1.0, 1.0, 1.0])


class TestStepMetrics:
    def test_no_overshoot_first_order(self):
        t, v = ramp_step()
        assert overshoot(t, v) == pytest.approx(0.0, abs=1e-6)

    def test_overshoot_second_order(self):
        t = np.linspace(0, 20, 4000)
        v = 1 - np.exp(-0.3 * t) * np.cos(2 * t)
        # zeta/wn chosen for a visible peak
        assert overshoot(t, v, final_value=1.0) > 0.3

    def test_settling_time(self):
        t, v = ramp_step(tau=1e-6, tstop=20e-6, n=8000)
        ts = settling_time(t, v, tolerance=0.01, final_value=1.0)
        assert ts == pytest.approx(1e-6 * math.log(100), rel=0.05)

    def test_flat_waveform_settles_immediately(self):
        assert settling_time([0, 1, 2], [1.0, 1.0, 1.0]) == 0.0


class TestPeriodic:
    def test_period(self):
        t, v = square_wave(period_s=2e-6)
        assert period(t, v) == pytest.approx(2e-6, rel=0.01)

    def test_duty_cycle(self):
        t, v = square_wave(duty=0.25)
        assert duty_cycle(t, v) == pytest.approx(0.25, abs=0.02)

    def test_period_needs_two_crossings(self):
        t, v = ramp_step()
        with pytest.raises(MeasurementError):
            period(t, v)


class TestSlewRate:
    def test_linear_ramp(self):
        t = np.linspace(0, 1e-6, 100)
        v = 5.0 * t / 1e-6
        assert slew_rate(t, v) == pytest.approx(5.0 / 1e-6, rel=1e-6)

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError):
            slew_rate([0, 2, 1], [0, 1, 2])


class TestOnRealSimulation:
    def test_clock_buffer_edges(self):
        """Measure the clock generator's output edges."""
        from repro.adc.clockgen import clockgen_testbench
        from repro.adc.comparator import CLOCK_PERIOD
        from repro.circuit import transient

        tb = clockgen_testbench()
        tr = transient(tb, tstop=2.5 * CLOCK_PERIOD, dt=0.5e-9)
        tr_rise = rise_time(tr.times, tr.voltage("phi1"))
        assert 0.1e-9 < tr_rise < 10e-9
        assert duty_cycle(tr.times, tr.voltage("phi1")) < 0.5