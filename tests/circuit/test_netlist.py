"""Tests for the netlist container and compilation."""

import pytest

from repro.circuit import (Circuit, CircuitError, Resistor, VoltageSource,
                           canonical_node)


def test_ground_aliases_normalise():
    assert canonical_node("0") == "gnd"
    assert canonical_node("GND") == "gnd"
    assert canonical_node("vss!") == "gnd"
    assert canonical_node("a") == "a"


def test_add_and_lookup_element():
    c = Circuit()
    r = c.add(Resistor("R1", "a", "b", 100.0))
    assert c.element("R1") is r
    assert "R1" in c
    assert len(c) == 1


def test_duplicate_name_rejected():
    c = Circuit()
    c.add(Resistor("R1", "a", "b", 100.0))
    with pytest.raises(CircuitError):
        c.add(Resistor("R1", "b", "c", 200.0))


def test_remove_element():
    c = Circuit()
    c.add(Resistor("R1", "a", "b", 100.0))
    c.remove("R1")
    assert "R1" not in c
    with pytest.raises(CircuitError):
        c.remove("R1")


def test_nodes_exclude_ground_and_sorted():
    c = Circuit()
    c.add(Resistor("R1", "b", "0", 1.0))
    c.add(Resistor("R2", "a", "b", 1.0))
    assert c.nodes() == ["a", "b"]


def test_elements_on_node():
    c = Circuit()
    r1 = c.add(Resistor("R1", "a", "b", 1.0))
    r2 = c.add(Resistor("R2", "b", "c", 1.0))
    c.add(Resistor("R3", "c", "gnd", 1.0))
    on_b = c.elements_on_node("b")
    assert r1 in on_b and r2 in on_b and len(on_b) == 2


def test_rename_terminal_splits_node():
    c = Circuit()
    c.add(Resistor("R1", "a", "b", 1.0))
    c.add(Resistor("R2", "b", "c", 1.0))
    c.rename_terminal("R2", 0, "b_split")
    assert c.element("R2").nodes[0] == "b_split"
    assert "b_split" in c.nodes()


def test_rename_terminal_bad_index():
    c = Circuit()
    c.add(Resistor("R1", "a", "b", 1.0))
    with pytest.raises(CircuitError):
        c.rename_terminal("R1", 5, "x")


def test_compile_assigns_indices():
    c = Circuit()
    c.add(VoltageSource("V1", "in", "gnd", 1.0))
    c.add(Resistor("R1", "in", "out", 1.0))
    c.add(Resistor("R2", "out", "gnd", 1.0))
    comp = c.compile()
    assert comp.size == 3  # two nodes + one branch
    assert comp.index_of("gnd") == -1
    assert comp.index_of("in") != comp.index_of("out")
    assert comp.branch_index["V1"] == 2


def test_compile_unknown_node_raises():
    c = Circuit()
    c.add(Resistor("R1", "a", "gnd", 1.0))
    comp = c.compile()
    with pytest.raises(CircuitError):
        comp.index_of("nope")


def test_copy_is_independent():
    c = Circuit("orig")
    c.add(Resistor("R1", "a", "b", 100.0))
    c2 = c.copy()
    c2.element("R1").resistance = 5.0
    c2.rename_terminal("R1", 0, "z")
    assert c.element("R1").resistance == 100.0
    assert c.element("R1").nodes[0] == "a"


def test_resistor_rejects_nonpositive():
    with pytest.raises(ValueError):
        Resistor("R1", "a", "b", 0.0)
    with pytest.raises(ValueError):
        Resistor("R1", "a", "b", -1.0)
