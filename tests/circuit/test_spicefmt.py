"""Tests for the SPICE netlist reader/writer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.comparator import build_comparator
from repro.adc.process import typical
from repro.circuit import (Capacitor, Circuit, CurrentSource, Diode,
                           Mosfet, Pulse, Resistor, Sin, VCCS, VCVS,
                           VoltageSource, operating_point)
from repro.circuit.spicefmt import (SpiceFormatError, format_value,
                                    parse_netlist, parse_value,
                                    write_netlist)


class TestValues:
    def test_suffixes(self):
        assert parse_value("1k") == pytest.approx(1e3)
        assert parse_value("2.2u") == pytest.approx(2.2e-6)
        assert parse_value("100n") == pytest.approx(100e-9)
        assert parse_value("1MEG") == pytest.approx(1e6)
        assert parse_value("3m") == pytest.approx(3e-3)
        assert parse_value("1.5e-12") == pytest.approx(1.5e-12)
        assert parse_value("-4.7k") == pytest.approx(-4700)

    def test_trailing_units_ignored(self):
        # SPICE tradition: "10kohm" == "10k"
        assert parse_value("10kohm") == pytest.approx(1e4)

    def test_bad_value(self):
        with pytest.raises(SpiceFormatError):
            parse_value("abc")

    @given(st.floats(min_value=1e-15, max_value=1e9))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, value):
        assert parse_value(format_value(value)) == \
            pytest.approx(value, rel=1e-5)


def full_featured_circuit():
    p = typical()
    c = Circuit("every element kind")
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VIN", "in", "gnd",
                        Pulse(0, 5, 1e-9, 1e-9, 1e-9, 10e-9, 40e-9),
                        ac=1.0))
    c.add(VoltageSource("VS", "s", "gnd", Sin(2.5, 0.1, 1e6)))
    c.add(CurrentSource("IB", "vdd", "bias", 10e-6))
    c.add(Resistor("R1", "vdd", "out", 10e3))
    c.add(Capacitor("CL", "out", "gnd", 100e-15))
    c.add(Mosfet("MN1", "out", "in", "gnd", "gnd", p.nmos, w=4e-6,
                 l=1e-6))
    c.add(Mosfet("MP1", "out", "in", "vdd", "vdd", p.pmos, w=8e-6,
                 l=1e-6, polarity="p"))
    c.add(VCVS("EA", "e_out", "gnd", "out", "gnd", 2.0))
    c.add(VCCS("GM1", "g_out", "gnd", "out", "gnd", 1e-3))
    c.add(Resistor("RE", "e_out", "gnd", 1e3))
    c.add(Resistor("RG", "g_out", "gnd", 1e3))
    c.add(Diode("DCLMP", "bias", "gnd"))
    return c


class TestRoundTrip:
    def test_write_then_parse_preserves_structure(self):
        original = full_featured_circuit()
        text = write_netlist(original)
        parsed = parse_netlist(text)
        assert len(parsed) == len(original)
        assert sorted(parsed.nodes()) == sorted(original.nodes())

    def test_roundtrip_preserves_dc_solution(self):
        original = full_featured_circuit()
        parsed = parse_netlist(write_netlist(original))
        op_a = operating_point(original)
        op_b = operating_point(parsed)
        for node in original.nodes():
            assert op_b.voltage(node) == pytest.approx(
                op_a.voltage(node), abs=1e-6), node

    def test_comparator_roundtrip(self):
        """The real macro netlist survives a round trip."""
        original = build_comparator()
        parsed = parse_netlist(write_netlist(original))
        assert len(parsed) == len(original)
        mosfets_a = sorted(el.name for el in original.elements
                           if isinstance(el, Mosfet))
        mosfets_b = sorted(el.name for el in parsed.elements
                           if isinstance(el, Mosfet))
        assert mosfets_a == mosfets_b

    def test_pulse_waveform_roundtrip(self):
        parsed = parse_netlist(write_netlist(full_featured_circuit()))
        pulse = parsed.element("VIN").value
        assert isinstance(pulse, Pulse)
        assert pulse.high == pytest.approx(5.0)
        assert pulse.period == pytest.approx(40e-9)
        assert parsed.element("VIN").ac == pytest.approx(1.0)


class TestParsing:
    def test_title_comments_continuation(self):
        text = """my divider
* a comment
R1 in out 1k
R2 out
+ gnd 1k
V1 in gnd 10
.end
"""
        c = parse_netlist(text)
        assert c.title == "my divider"
        assert len(c) == 3
        op = operating_point(c)
        assert op.voltage("out") == pytest.approx(5.0)

    def test_model_card_and_mosfet(self):
        text = """test
.model mynmos NMOS (LEVEL=1 VTO=0.7 KP=60u LAMBDA=0.05 GAMMA=0.4
+ PHI=0.6 COX=1.7m CGSO=0.3n)
M1 d g 0 0 mynmos W=10u L=1u
V1 d 0 5
V2 g 0 1.7
.end
"""
        c = parse_netlist(text)
        m = c.element("M1")
        assert isinstance(m, Mosfet)
        assert m.w == pytest.approx(10e-6)
        assert m.params.vto == pytest.approx(0.7)
        op = operating_point(c)
        expected = 0.5 * 60e-6 * 10 * (1.0 ** 2) * (1 + 0.05 * 5)
        assert -op.current("V1") == pytest.approx(expected, rel=1e-3)

    def test_pwl_source(self):
        text = """t
V1 a 0 PWL(0 0 1u 5 2u 0)
R1 a 0 1k
.end
"""
        c = parse_netlist(text)
        wave = c.element("V1").value
        assert wave.at(0.5e-6) == pytest.approx(2.5)

    def test_unknown_model_rejected(self):
        with pytest.raises(SpiceFormatError):
            parse_netlist("t\nM1 d g s b ghost W=1u L=1u\n.end\n")

    def test_unsupported_card_rejected(self):
        with pytest.raises(SpiceFormatError):
            parse_netlist("t\nXsub a b mysub\n.end\n")

    def test_cards_after_end_ignored(self):
        c = parse_netlist("t\nR1 a 0 1k\n.end\nR2 b 0 1k\n")
        assert len(c) == 1
