"""Tests for DC operating-point analysis."""

import math

import numpy as np
import pytest

from repro.circuit import (Circuit, CurrentSource, Diode, Mosfet, MosParams,
                           Resistor, Switch, VCCS, VCVS, VoltageSource,
                           dc_sweep, operating_point)

NMOS = MosParams(kp=60e-6, vto=0.7, lam=0.05, gamma=0.4, phi=0.6,
                 cox=1.7e-3, cov=3e-10)
PMOS = MosParams(kp=25e-6, vto=-0.8, lam=0.06, gamma=0.5, phi=0.6,
                 cox=1.7e-3, cov=3e-10)


def divider(r1=1000.0, r2=1000.0, v=10.0):
    c = Circuit("div")
    c.add(VoltageSource("V1", "in", "gnd", v))
    c.add(Resistor("R1", "in", "mid", r1))
    c.add(Resistor("R2", "mid", "gnd", r2))
    return c


def test_resistor_divider():
    op = operating_point(divider())
    assert op.voltage("mid") == pytest.approx(5.0)
    assert op.voltage("in") == pytest.approx(10.0)


def test_source_branch_current_sign():
    op = operating_point(divider())
    # 10 V across 2 kOhm: 5 mA sourced, SPICE convention -> negative
    assert op.current("V1") == pytest.approx(-5e-3)


def test_current_source_into_resistor():
    c = Circuit()
    c.add(CurrentSource("I1", "gnd", "out", 1e-3))
    c.add(Resistor("R1", "out", "gnd", 2000.0))
    op = operating_point(c)
    assert op.voltage("out") == pytest.approx(2.0)


def test_vccs():
    c = Circuit()
    c.add(VoltageSource("V1", "c", "gnd", 2.0))
    c.add(VCCS("G1", "out", "gnd", "c", "gnd", gm=1e-3))
    c.add(Resistor("R1", "out", "gnd", 1000.0))
    op = operating_point(c)
    # i = gm*v flows out of "out" into gnd -> out is pulled negative
    assert op.voltage("out") == pytest.approx(-2.0)


def test_vcvs():
    c = Circuit()
    c.add(VoltageSource("V1", "c", "gnd", 1.5))
    c.add(VCVS("E1", "out", "gnd", "c", "gnd", gain=4.0))
    c.add(Resistor("R1", "out", "gnd", 1000.0))
    op = operating_point(c)
    assert op.voltage("out") == pytest.approx(6.0)


def test_voltages_dict():
    op = operating_point(divider())
    v = op.voltages()
    assert set(v) == {"in", "mid"}
    assert v["mid"] == pytest.approx(5.0)


def test_nmos_saturation_current():
    c = Circuit()
    c.add(VoltageSource("VD", "d", "gnd", 5.0))
    c.add(VoltageSource("VG", "g", "gnd", 1.7))
    c.add(Mosfet("M1", "d", "g", "gnd", "gnd", NMOS, w=10e-6, l=1e-6))
    op = operating_point(c)
    beta = NMOS.kp * 10.0
    expected = 0.5 * beta * (1.7 - 0.7) ** 2 * (1 + NMOS.lam * 5.0)
    assert -op.current("VD") == pytest.approx(expected, rel=1e-4)


def test_nmos_triode_current():
    c = Circuit()
    c.add(VoltageSource("VD", "d", "gnd", 0.1))
    c.add(VoltageSource("VG", "g", "gnd", 3.0))
    c.add(Mosfet("M1", "d", "g", "gnd", "gnd", NMOS, w=10e-6, l=1e-6))
    op = operating_point(c)
    beta = NMOS.kp * 10.0
    expected = beta * ((3.0 - 0.7) - 0.05) * 0.1 * (1 + NMOS.lam * 0.1)
    assert -op.current("VD") == pytest.approx(expected, rel=1e-4)


def test_nmos_cutoff():
    c = Circuit()
    c.add(VoltageSource("VD", "d", "gnd", 5.0))
    c.add(VoltageSource("VG", "g", "gnd", 0.3))
    c.add(Mosfet("M1", "d", "g", "gnd", "gnd", NMOS, w=10e-6, l=1e-6))
    op = operating_point(c)
    assert abs(op.current("VD")) < 1e-9


def test_pmos_mirror_of_nmos():
    c = Circuit()
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VG", "g", "gnd", 3.2))  # Vsg = 1.8, |vto|=0.8
    c.add(Resistor("RD", "d", "gnd", 1.0))
    c.add(Mosfet("M1", "d", "g", "vdd", "vdd", PMOS, w=10e-6, l=1e-6,
                 polarity="p"))
    op = operating_point(c)
    beta = PMOS.kp * 10.0
    vds = abs(op.voltage("d") - 5.0)
    expected = 0.5 * beta * (1.8 - 0.8) ** 2 * (1 + PMOS.lam * vds)
    # current flows from vdd through PMOS into RD into gnd
    assert op.voltage("d") == pytest.approx(expected * 1.0, rel=1e-3)


def test_mosfet_source_drain_swap_symmetry():
    """A MOSFET pass device conducts identically in both directions."""
    def conduct(swap_terminals):
        c = Circuit()
        c.add(VoltageSource("VL", "a", "gnd", 1.0))
        c.add(VoltageSource("VG", "g", "gnd", 5.0))
        c.add(Resistor("RL", "b", "gnd", 10e3))
        d, s = ("b", "a") if swap_terminals else ("a", "b")
        c.add(Mosfet("M1", d, "g", s, "gnd", NMOS, w=4e-6, l=1e-6))
        op = operating_point(c)
        return op.voltage("b")

    v_fwd = conduct(False)
    v_rev = conduct(True)
    # The device conducts (output close to the driven side through the
    # on-resistance / load divider) and is direction-symmetric.
    assert 0.7 < v_fwd < 1.0
    assert v_fwd == pytest.approx(v_rev, rel=1e-6)


def test_body_effect_raises_threshold():
    m = Mosfet("M1", "d", "g", "s", "b", NMOS, w=1e-6, l=1e-6)
    assert m.threshold(0.0) == pytest.approx(0.7)
    assert m.threshold(2.0) > 0.7 + 0.2


def test_mosfet_region_classification():
    m = Mosfet("M1", "d", "g", "s", "b", NMOS, w=1e-6, l=1e-6)
    assert m.operating_point(5.0, 0.0, 0.0, 0.0)[1] == "off"
    assert m.operating_point(0.05, 3.0, 0.0, 0.0)[1] == "triode"
    assert m.operating_point(5.0, 1.5, 0.0, 0.0)[1] == "sat"


def test_diode_forward_drop():
    c = Circuit()
    c.add(VoltageSource("V1", "in", "gnd", 5.0))
    c.add(Resistor("R1", "in", "a", 1000.0))
    c.add(Diode("D1", "a", "gnd"))
    op = operating_point(c)
    assert 0.5 < op.voltage("a") < 0.8


def test_diode_reverse_blocks():
    c = Circuit()
    c.add(VoltageSource("V1", "in", "gnd", -5.0))
    c.add(Resistor("R1", "in", "a", 1000.0))
    c.add(Diode("D1", "a", "gnd"))
    op = operating_point(c)
    assert op.voltage("a") == pytest.approx(-5.0, abs=1e-3)


def test_switch_on_off():
    c = Circuit()
    c.add(VoltageSource("V1", "in", "gnd", 1.0))
    c.add(VoltageSource("VC", "ctrl", "gnd", 5.0))
    c.add(Switch("S1", "in", "out", "ctrl", vt=2.5, ron=100.0, roff=1e9))
    c.add(Resistor("RL", "out", "gnd", 100.0))
    op = operating_point(c)
    assert op.voltage("out") == pytest.approx(0.5, abs=1e-3)
    c.element("VC").value = 0.0
    op = operating_point(c)
    assert op.voltage("out") < 1e-3


def test_dc_sweep_restores_source_and_tracks():
    c = divider()
    src = c.element("V1")
    results = dc_sweep(c, "V1", [0.0, 2.0, 4.0])
    assert [r.voltage("mid") for r in results] == pytest.approx(
        [0.0, 1.0, 2.0])
    assert src.value == 10.0


def test_cmos_inverter_dc_transfer_monotone():
    c = Circuit("cmosinv")
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VIN", "in", "gnd", 0.0))
    c.add(Mosfet("MN", "out", "in", "gnd", "gnd", NMOS, w=4e-6, l=1e-6))
    c.add(Mosfet("MP", "out", "in", "vdd", "vdd", PMOS, w=8e-6, l=1e-6,
                 polarity="p"))
    vouts = [r.voltage("out")
             for r in dc_sweep(c, "VIN", np.linspace(0, 5, 21))]
    assert vouts[0] == pytest.approx(5.0, abs=0.01)
    assert vouts[-1] == pytest.approx(0.0, abs=0.01)
    assert all(a >= b - 1e-6 for a, b in zip(vouts, vouts[1:]))
