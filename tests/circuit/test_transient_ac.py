"""Tests for transient and AC analyses."""

import math

import numpy as np
import pytest

from repro.circuit import (Capacitor, Circuit, Mosfet, MosParams, Pulse,
                           Resistor, Sin, VoltageSource, ac_analysis,
                           bandwidth_3db, log_frequencies, operating_point,
                           supply_current, transient)

NMOS = MosParams(kp=60e-6, vto=0.7, lam=0.05, gamma=0.4, phi=0.6,
                 cox=1.7e-3, cov=3e-10)
PMOS = MosParams(kp=25e-6, vto=-0.8, lam=0.06, gamma=0.5, phi=0.6,
                 cox=1.7e-3, cov=3e-10)


def rc_circuit(tau_r=1e3, tau_c=1e-6):
    c = Circuit("rc")
    c.add(VoltageSource("V1", "in", "gnd",
                        Pulse(0, 1, 0, 1e-9, 1e-9, 10e-3, 20e-3)))
    c.add(Resistor("R1", "in", "out", tau_r))
    c.add(Capacitor("C1", "out", "gnd", tau_c))
    return c


def test_rc_step_response_be():
    tr = transient(rc_circuit(), tstop=3e-3, dt=10e-6)
    # tau = 1 ms
    assert tr.at_time("out", 1e-3) == pytest.approx(1 - math.exp(-1),
                                                    abs=0.01)
    assert tr.at_time("out", 2e-3) == pytest.approx(1 - math.exp(-2),
                                                    abs=0.01)


def test_rc_ramp_response_trap_more_accurate():
    """With a smooth ramp input, trapezoidal integration beats backward
    Euler (second vs first order)."""
    from repro.circuit import PWL

    def build():
        c = Circuit("rc_ramp")
        c.add(VoltageSource("V1", "in", "gnd",
                            PWL([(0.0, 0.0), (1e-3, 1.0)])))
        c.add(Resistor("R1", "in", "out", 1e3))
        c.add(Capacitor("C1", "out", "gnd", 1e-6))
        return c

    # exact response of RC (tau = 1 ms) to a unit ramp over T = 1 ms:
    # v(T) = 1 - (tau/T) * (1 - exp(-T/tau))
    exact = 1.0 - (1.0 - math.exp(-1.0))
    tr_be = transient(build(), tstop=1e-3, dt=50e-6, method="be")
    tr_trap = transient(build(), tstop=1e-3, dt=50e-6, method="trap")
    err_be = abs(tr_be.at_time("out", 1e-3) - exact)
    err_trap = abs(tr_trap.at_time("out", 1e-3) - exact)
    assert err_trap < err_be / 5.0


def test_transient_rejects_bad_args():
    with pytest.raises(ValueError):
        transient(rc_circuit(), tstop=-1.0, dt=1e-6)
    with pytest.raises(ValueError):
        transient(rc_circuit(), tstop=1e-3, dt=1e-6, method="rk4")


def test_transient_record_every():
    tr_full = transient(rc_circuit(), tstop=1e-3, dt=10e-6)
    tr_thin = transient(rc_circuit(), tstop=1e-3, dt=10e-6, record_every=5)
    assert len(tr_thin.times) < len(tr_full.times)
    assert tr_thin.times[-1] == pytest.approx(1e-3)


def test_supply_current_sign_and_value():
    c = Circuit()
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(Resistor("R1", "vdd", "gnd", 1000.0))
    op = operating_point(c)
    assert supply_current(op, "VDD") == pytest.approx(5e-3)


def test_cmos_inverter_switches_in_transient():
    c = Circuit("inv")
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VIN", "in", "gnd",
                        Pulse(0, 5, 10e-9, 1e-9, 1e-9, 40e-9, 100e-9)))
    c.add(Mosfet("MN", "out", "in", "gnd", "gnd", NMOS, w=4e-6, l=1e-6))
    c.add(Mosfet("MP", "out", "in", "vdd", "vdd", PMOS, w=8e-6, l=1e-6,
                 polarity="p"))
    c.add(Capacitor("CL", "out", "gnd", 50e-15))
    tr = transient(c, tstop=100e-9, dt=0.5e-9)
    assert tr.at_time("out", 5e-9) > 4.5     # input low -> output high
    assert tr.at_time("out", 40e-9) < 0.5    # input high -> output low
    assert tr.at_time("out", 90e-9) > 4.5    # back low -> output high


def test_transient_branch_current_waveform():
    c = rc_circuit()
    tr = transient(c, tstop=0.2e-3, dt=5e-6)
    i = supply_current(tr, "V1")
    # charging current starts near 1 V / 1 kOhm and decays
    assert i[2] > 0.8e-3
    assert i[-1] < i[2]


def test_ac_rc_lowpass_pole():
    c = Circuit()
    c.add(VoltageSource("V1", "in", "gnd", 0.0, ac=1.0))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Capacitor("C1", "out", "gnd", 1e-9))
    res = ac_analysis(c, log_frequencies(1e3, 1e8, 20))
    f3 = bandwidth_3db(res, "out")
    assert f3 == pytest.approx(1.0 / (2 * math.pi * 1e3 * 1e-9), rel=0.05)


def test_ac_magnitude_and_phase():
    c = Circuit()
    c.add(VoltageSource("V1", "in", "gnd", 0.0, ac=1.0))
    c.add(Resistor("R1", "in", "out", 1e3))
    c.add(Capacitor("C1", "out", "gnd", 1e-9))
    fc = 1.0 / (2 * math.pi * 1e3 * 1e-9)
    res = ac_analysis(c, [fc])
    assert res.magnitude_db("out")[0] == pytest.approx(-3.01, abs=0.1)
    assert res.phase_deg("out")[0] == pytest.approx(-45.0, abs=1.0)


def test_ac_common_source_gain():
    """Small-signal gain of a resistively loaded common-source stage
    matches -gm*(RL || ro)."""
    c = Circuit()
    c.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    c.add(VoltageSource("VIN", "in", "gnd", 1.5, ac=1.0))
    c.add(Resistor("RL", "vdd", "out", 20e3))
    m = c.add(Mosfet("M1", "out", "in", "gnd", "gnd", NMOS, w=10e-6, l=1e-6))
    op = operating_point(c)
    vout = op.voltage("out")
    _, gm, gds, _ = m.ids(1.5, vout, 0.0)
    ro = 1.0 / gds
    expected_gain = gm * (20e3 * ro) / (20e3 + ro)
    res = ac_analysis(c, [100.0], op=op)
    assert abs(res.response("out")[0]) == pytest.approx(expected_gain,
                                                        rel=0.02)


def test_log_frequencies_validation():
    with pytest.raises(ValueError):
        log_frequencies(0.0, 1e3)
    with pytest.raises(ValueError):
        log_frequencies(1e6, 1e3)
    f = log_frequencies(1e3, 1e6, 10)
    assert f[0] == pytest.approx(1e3)
    assert f[-1] == pytest.approx(1e6)
