"""Tests for waveform generators."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import (DC, PWL, Pulse, Sin, Triangle,
                           three_phase_clocks)


def test_dc_constant():
    w = DC(3.3)
    assert w.at(0.0) == 3.3
    assert w.at(1e9) == 3.3


class TestPulse:
    def test_levels_and_edges(self):
        p = Pulse(0, 5, delay=10e-9, rise=1e-9, fall=1e-9, width=20e-9,
                  period=100e-9)
        assert p.at(0.0) == 0.0
        assert p.at(9e-9) == 0.0
        assert p.at(10.5e-9) == pytest.approx(2.5)
        assert p.at(15e-9) == 5.0
        assert p.at(30e-9) == 5.0
        assert p.at(31.5e-9) == pytest.approx(2.5)
        assert p.at(50e-9) == 0.0

    def test_periodicity(self):
        p = Pulse(0, 5, 0, 1e-9, 1e-9, 20e-9, 100e-9)
        assert p.at(15e-9) == p.at(115e-9)
        assert p.at(60e-9) == p.at(260e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pulse(0, 5, 0, 1e-9, 1e-9, 20e-9, period=0.0)
        with pytest.raises(ValueError):
            Pulse(0, 5, 0, 60e-9, 1e-9, 50e-9, period=100e-9)


class TestTriangle:
    def test_extremes(self):
        t = Triangle(low=0.0, high=2.0, period=1.0)
        assert t.at(0.0) == pytest.approx(0.0)
        assert t.at(0.5) == pytest.approx(2.0)
        assert t.at(1.0) == pytest.approx(0.0)
        assert t.at(0.25) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_always_in_range(self, time):
        t = Triangle(low=-1.0, high=3.0, period=0.7)
        assert -1.0 - 1e-9 <= t.at(time) <= 3.0 + 1e-9

    def test_covers_full_range(self):
        """Sampling one period hits values arbitrarily near both rails -
        the property the missing-code stimulus relies on."""
        t = Triangle(low=0.0, high=1.0, period=1.0)
        samples = [t.at(k / 1000.0) for k in range(1000)]
        assert min(samples) < 0.005
        assert max(samples) > 0.995


class TestPWL:
    def test_interpolation(self):
        w = PWL([(0.0, 0.0), (1.0, 10.0), (2.0, -10.0)])
        assert w.at(-1.0) == 0.0
        assert w.at(0.5) == pytest.approx(5.0)
        assert w.at(1.5) == pytest.approx(0.0)
        assert w.at(5.0) == -10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PWL([])
        with pytest.raises(ValueError):
            PWL([(0.0, 1.0), (0.0, 2.0)])


def test_sin():
    s = Sin(offset=1.0, amplitude=0.5, freq=1.0)
    assert s.at(0.0) == pytest.approx(1.0)
    assert s.at(0.25) == pytest.approx(1.5)
    assert s.at(0.75) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        Sin(0, 1, freq=0.0)


class TestThreePhaseClocks:
    def test_non_overlap(self):
        """At no time are two phases simultaneously above half rail."""
        period = 50e-9
        phis = three_phase_clocks(period, vdd=5.0, edge=0.5e-9)
        for k in range(500):
            t = k * period / 500.0
            high = [p.at(t) > 2.5 for p in phis]
            assert sum(high) <= 1

    def test_each_phase_occurs(self):
        period = 50e-9
        phis = three_phase_clocks(period, vdd=5.0, edge=0.5e-9)
        for p in phis:
            values = [p.at(k * period / 300.0) for k in range(300)]
            assert max(values) == pytest.approx(5.0)
            assert min(values) == pytest.approx(0.0)

    def test_phase_ordering(self):
        period = 30e-9
        phi1, phi2, phi3 = three_phase_clocks(period, vdd=5.0, edge=0.1e-9)
        assert phi1.at(5e-9) > 4.9 and phi2.at(5e-9) < 0.1
        assert phi2.at(15e-9) > 4.9 and phi3.at(15e-9) < 0.1
        assert phi3.at(25e-9) > 4.9 and phi1.at(25e-9) < 0.1

    def test_too_short_period_rejected(self):
        with pytest.raises(ValueError):
            three_phase_clocks(1e-9, vdd=5.0, edge=1e-9)
