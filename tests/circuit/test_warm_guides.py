"""Warm-start continuation: guided solves land on the same solution.

The transient and batched kernels accept an ``x0_guess`` / ``guide``
(baseline trajectory) that seeds each Newton solve.  Newton iterates
to a fixed tolerance, so a guided run reproduces the unguided solution
to within that tolerance (bitwise identity is *not* promised — a
different start converges to a numerically different point inside the
tolerance ball; the engine-level tests pin that detection *verdicts*
are exactly identical).  These tests pin solution agreement plus the
degraded cases (mis-shaped guides ignored, unguided lanes stay cold).
"""

import numpy as np

from repro.adc.comparator import (CLOCK_PERIOD, build_testbench,
                                  regeneration_windows)
from repro.circuit import operating_point, transient
from repro.circuit.batch import (clear_kernel_cache, transient_lanes,
                                 operating_point_lanes)
from repro.faultsim.baseline import (Trajectory, align_guide, align_x0,
                                     coerce_payload, MacroBaseline)


def testbench(vin=2.6):
    return build_testbench(vin=vin, vref=2.5).circuit


def same_solution(a, b, atol=1e-5):
    """Timepoints identical; solutions equal to solver tolerance."""
    return np.array_equal(a.times, b.times) and \
        np.allclose(a.xs, b.xs, rtol=1e-6, atol=atol)


def run(circuit, guide=None, x0_guess=None):
    clear_kernel_cache()
    return transient(circuit, tstop=CLOCK_PERIOD, dt=1e-9,
                     fine_windows=regeneration_windows(CLOCK_PERIOD, 1),
                     guide=guide, x0_guess=x0_guess)


class TestGuidedTransient:
    def test_self_guided_identical(self):
        cold = run(testbench())
        traj = Trajectory.from_result(cold)
        compiled = testbench().compile()
        warm = run(testbench(), guide=align_guide(compiled, traj),
                   x0_guess=align_x0(compiled, traj))
        assert same_solution(cold, warm)

    def test_cross_circuit_guide_identical(self):
        """A guide from a *different* (good) circuit still reproduces
        the target's own solution — the fault-simulation case."""
        cold = run(testbench(vin=2.4))
        good = Trajectory.from_result(run(testbench(vin=2.6)))
        compiled = testbench(vin=2.4).compile()
        warm = run(testbench(vin=2.4),
                   guide=align_guide(compiled, good),
                   x0_guess=align_x0(compiled, good))
        assert same_solution(cold, warm)

    def test_malformed_guide_ignored(self):
        cold = run(testbench())
        bad = (np.array([0.0, 1e-9]), np.zeros((3, 2)))  # wrong shape
        warm = run(testbench(), guide=bad)
        assert same_solution(cold, warm)


class TestGuidedBatch:
    def test_mixed_guided_and_cold_lanes_identical(self):
        circuits = [testbench(2.6), testbench(2.4)]
        clear_kernel_cache()
        cold = transient_lanes(circuits, tstop=CLOCK_PERIOD, dt=1e-9,
                               fine_windows=regeneration_windows(
                                   CLOCK_PERIOD, 1))
        traj = Trajectory.from_result(cold[0])
        guides = [align_guide(c.compile(), traj) for c in circuits[:1]]
        guides.append(None)  # second lane stays cold
        clear_kernel_cache()
        warm = transient_lanes(circuits, tstop=CLOCK_PERIOD, dt=1e-9,
                               fine_windows=regeneration_windows(
                                   CLOCK_PERIOD, 1),
                               guides=guides)
        for c, w in zip(cold, warm):
            assert same_solution(c, w)

    def test_warm_dc_lanes_identical(self):
        circuits = [testbench(2.6)]
        clear_kernel_cache()
        cold = operating_point_lanes(circuits)
        guess = cold[0].x.copy()
        clear_kernel_cache()
        warm = operating_point_lanes(circuits, x0_guesses=[guess])
        assert np.allclose(cold[0].x, warm[0].x, rtol=1e-6, atol=1e-5)


class TestTrajectoryRoundtrip:
    def test_json_roundtrip_bit_exact(self):
        result = run(testbench())
        traj = Trajectory.from_result(result)
        back = Trajectory.from_dict(traj.to_dict())
        assert np.array_equal(traj.times, back.times)
        assert np.array_equal(traj.xs, back.xs)
        assert traj.node_cols == back.node_cols
        assert traj.branch_cols == back.branch_cols

    def test_dc_result_captured(self):
        circuit = testbench()
        op = operating_point(circuit)
        traj = Trajectory.from_result(op)
        assert traj.xs.shape == (1, op.x.shape[0])
        assert traj.times.tolist() == [0.0]

    def test_align_guide_fills_unknowns_with_zero(self):
        result = run(testbench())
        traj = Trajectory.from_result(result)
        other = testbench(vin=2.4).compile()
        times, xs = align_guide(other, traj)
        assert xs.shape == (traj.xs.shape[0], other.size)

    def test_coerce_payload_forms(self):
        mb = MacroBaseline(macro="m", payload={"k": 1})
        assert coerce_payload(mb) == {"k": 1}
        assert coerce_payload(mb.to_dict()) == {"k": 1}
        assert coerce_payload({"k": 1}) == {"k": 1}
        stale = dict(mb.to_dict(), baseline_version=-1)
        assert coerce_payload(stale) is None
        assert coerce_payload("junk") is None
