"""Tests for the pluggable linear-solve backends.

Covers the solver knob resolution, the sparse pattern machinery
(scatter equivalence against the dense kernel, the reusable CSC
template, singular-lane verdicts), the per-lane dense fallback
contract, the per-phase timing counters and the full-chip netlist that
motivates the sparse backend.
"""

import numpy as np
import pytest

from repro.adc.fullchip import (build_fullchip, decode_at,
                                fullchip_transient)
from repro.circuit import backend
from repro.circuit.backend import (HAVE_SPARSE, SOLVERS, SparsePattern,
                                   resolve_solver)
from repro.circuit.batch import (SparseBatchedMNASystem, _BatchProgram,
                                 transient_batch)
from repro.circuit.elements import Resistor, VoltageSource
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.adc.process import typical

needs_scipy = pytest.mark.skipif(not HAVE_SPARSE,
                                 reason="scipy not installed")


class TestResolveSolver:
    def test_auto_is_dense_batched(self):
        assert resolve_solver("auto") == "dense-batched"

    def test_identity_for_dense_family(self):
        assert resolve_solver("dense") == "dense"
        assert resolve_solver("dense-batched") == "dense-batched"

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            resolve_solver("cholesky")

    def test_every_knob_value_resolves(self):
        for solver in SOLVERS:
            assert resolve_solver(solver) in SOLVERS

    @needs_scipy
    def test_sparse_resolves_sparse_with_scipy(self):
        assert resolve_solver("sparse") == "sparse"

    def test_sparse_degrades_without_scipy(self, monkeypatch):
        monkeypatch.setattr(backend, "HAVE_SPARSE", False)
        assert resolve_solver("sparse") == "dense-batched"


def _inverter_pair() -> Circuit:
    """A small nonlinear circuit with MOSFET swap dynamics."""
    p = typical()
    c = Circuit("inv2")
    c.add(VoltageSource("VDD", "vdd", "gnd", p.vdd))
    c.add(VoltageSource("VIN", "a", "gnd", 1.3))
    c.add(Mosfet("MP1", "y", "a", "vdd", "vdd", p.pmos,
                 w=4e-6, l=1e-6, polarity="p"))
    c.add(Mosfet("MN1", "y", "a", "gnd", "gnd", p.nmos,
                 w=2e-6, l=1e-6, polarity="n"))
    c.add(Mosfet("MP2", "z", "y", "vdd", "vdd", p.pmos,
                 w=4e-6, l=1e-6, polarity="p"))
    c.add(Mosfet("MN2", "z", "y", "gnd", "gnd", p.nmos,
                 w=2e-6, l=1e-6, polarity="n"))
    c.add(Resistor("RL", "z", "gnd", 1e6))
    return c


@needs_scipy
class TestSparsePattern:
    def _program(self):
        circuit = _inverter_pair()
        compiled = circuit.compile()
        system = SparseBatchedMNASystem(compiled, 2)
        return _BatchProgram([circuit, circuit.copy()], system,
                             tran=False), system, compiled

    def test_scatter_matches_dense_assembly(self):
        """Pattern-order data densified == the dense kernel's matrix."""
        from repro.circuit.batch import BatchedMNASystem, StampContext
        circuit = _inverter_pair()
        compiled = circuit.compile()
        lanes = [circuit, circuit.copy()]
        dense_sys = BatchedMNASystem(compiled, 2)
        dense_prog = _BatchProgram(lanes, dense_sys, tran=False)
        sparse_sys = SparseBatchedMNASystem(compiled, 2)
        sparse_prog = _BatchProgram(lanes, sparse_sys, tran=False)
        X = np.full((2, compiled.size), 0.5)
        ctx = StampContext(gmin=1e-9, time=0.0, x_prev=None, dt=None)
        dense_prog.assemble(dense_sys, X, ctx)
        sparse_prog.assemble(sparse_sys, X, ctx)
        for k in range(2):
            G = sparse_prog.pattern.densify(sparse_prog.data[k])
            np.testing.assert_array_equal(G, dense_sys.G[k])
            np.testing.assert_array_equal(sparse_sys.b[k],
                                          dense_sys.b[k])

    def test_incremental_positions_track_swaps(self):
        """POS stays equal to a from-scratch searchsorted after the
        MOSFET refresh rewrites the swap columns."""
        from repro.circuit.batch import StampContext
        prog, system, compiled = self._program()
        rng = np.random.default_rng(7)
        for trial in range(4):
            X = rng.uniform(0.0, 5.0, size=(2, compiled.size))
            ctx = StampContext(gmin=1e-9, time=0.0, x_prev=None,
                               dt=None)
            prog.assemble(system, X, ctx)
            np.testing.assert_array_equal(
                prog.POS, prog.pattern.positions(prog.IG))

    def test_factor_reuses_template(self):
        prog, system, compiled = self._program()
        from repro.circuit.batch import StampContext
        ctx = StampContext(gmin=1e-9, time=0.0, x_prev=None, dt=None)
        prog.assemble(system, np.zeros((2, compiled.size)), ctx)
        pat = prog.pattern
        pat.factor(prog.data[0])
        template = pat._csc
        pat.factor(prog.data[1])
        assert pat._csc is template

    def test_solve_lane_reports_singular(self):
        prog, system, compiled = self._program()
        zeros = np.zeros(prog.pattern.nnz)
        x, ok = prog.pattern.solve_lane(zeros,
                                        np.ones(compiled.size))
        assert not ok and x is None

    def test_solve_lane_roundtrip(self):
        from repro.circuit.batch import StampContext
        prog, system, compiled = self._program()
        ctx = StampContext(gmin=1e-9, time=0.0, x_prev=None, dt=None)
        prog.assemble(system, np.zeros((2, compiled.size)), ctx)
        data = prog.data[0]
        b = system.b[0]
        x, ok = prog.pattern.solve_lane(data, b)
        assert ok
        G = prog.pattern.densify(data)
        np.testing.assert_allclose(G @ x, b, atol=1e-9)


@needs_scipy
class TestSparseFallback:
    def test_singular_sparse_lane_falls_back_to_dense(self, monkeypatch):
        """A lane the sparse factorization gives up on must still
        solve through the per-lane dense fallback — same contract as
        the batched kernel's LinAlgError retry."""
        circuit = _inverter_pair()
        baseline = transient_batch([circuit], tstop=2e-9, dt=1e-9,
                                   solver="dense")[0]
        monkeypatch.setattr(
            SparsePattern, "solve_lane",
            lambda self, data, b: (None, False))
        fallback = transient_batch([circuit], tstop=2e-9, dt=1e-9,
                                   solver="sparse")[0]
        np.testing.assert_array_equal(baseline.times, fallback.times)
        np.testing.assert_allclose(np.array(fallback.xs),
                                   np.array(baseline.xs),
                                   atol=1e-6)


class TestPhaseTimers:
    def test_phase_timer_accumulates(self):
        backend.reset_timings()
        with backend.phase_timer("assemble"):
            pass
        with backend.phase_timer("assemble"):
            pass
        timings = backend.snapshot_timings()
        assert set(timings) == {"assemble"}
        assert timings["assemble"] >= 0.0
        backend.reset_timings()
        assert backend.snapshot_timings() == {}

    def test_record_matrix_keeps_largest(self):
        backend.reset_matrix()
        backend.record_matrix("sparse", 100, 500, 4)
        backend.record_matrix("dense-batched", 10, 100, 1)
        info = backend.snapshot_matrix()
        assert info["n"] == 100 and info["backend"] == "sparse"
        backend.reset_matrix()
        assert backend.snapshot_matrix() == {}

    def test_solve_records_phases(self):
        backend.reset_timings()
        transient_batch([_inverter_pair()], tstop=2e-9, dt=1e-9,
                        solver="dense")
        timings = backend.snapshot_timings()
        assert "solve" in timings and "assemble" in timings
        assert "convergence_check" in timings
        backend.reset_timings()


class TestFullChip:
    def test_vbn2_is_layout_only(self):
        """vbn2 crosses the comparator as a routed track but no
        fault-free device connects to it — the chip still carries the
        distribution line for defect statistics."""
        chip = build_fullchip(n_bits=4)
        names = {el.name for el in chip.circuit.elements}
        assert "VBN2S" in names and "RBN2" in names

    def test_counts_scale_with_n_bits(self):
        chip = build_fullchip(n_bits=4)
        assert chip.n_taps == 16
        assert len(chip.comparator_outputs) == 16
        assert len(chip.decoder_outputs) == 4

    def test_rejects_too_small(self):
        with pytest.raises(ValueError, match="pitch"):
            build_fullchip(n_bits=3)

    def test_without_decoder(self):
        chip = build_fullchip(n_bits=4, with_decoder=False)
        assert chip.decoder_outputs == ()

    @needs_scipy
    def test_startup_march_dense_vs_sparse_agree(self):
        """The tentpole acceptance check at crossover-test size: the
        sparse march of the stitched chip matches the dense march
        within Newton tolerance, timepoint for timepoint."""
        chip = build_fullchip(n_bits=4)
        out = {s: fullchip_transient(chip, tstop=3e-9, dt=1e-9,
                                     solver=s)
               for s in ("sparse", "dense")}
        np.testing.assert_array_equal(out["sparse"].times,
                                      out["dense"].times)
        diff = np.max(np.abs(np.array(out["sparse"].xs)
                             - np.array(out["dense"].xs)))
        assert diff < 1e-6
        code = decode_at(chip, out["sparse"], out["sparse"].times[-1])
        assert 0 <= code < 2 ** chip.n_bits
