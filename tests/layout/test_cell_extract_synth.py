"""Tests for layout cells, extraction and synthesis."""

import pytest

from repro.circuit import (Capacitor, Circuit, Mosfet, MosParams, Resistor)
from repro.layout import (DeviceInfo, LayoutCell, Rect, Shape, SynthOptions,
                          UnionFind, connected_components,
                          net_partition_without, synthesize, verify_cell)

NMOS = MosParams(kp=60e-6, vto=0.7, lam=0.05, gamma=0.4, phi=0.6,
                 cox=1.7e-3, cov=3e-10)
PMOS = MosParams(kp=25e-6, vto=-0.8, lam=0.06, gamma=0.5, phi=0.6,
                 cox=1.7e-3, cov=3e-10)


def small_netlist():
    c = Circuit("cellut")
    c.add(Mosfet("M1", "out", "in", "gnd", "gnd", NMOS, w=4e-6, l=1e-6))
    c.add(Mosfet("M2", "out", "in", "vdd", "vdd", PMOS, w=8e-6, l=1e-6,
                 polarity="p"))
    c.add(Resistor("R1", "out", "mid", 5000.0))
    c.add(Capacitor("C1", "mid", "gnd", 100e-15))
    return c


def synth_small(**kwargs):
    opts = SynthOptions(global_nets=["vdd", "gnd"],
                        ports=["in", "out", "vdd", "gnd"], **kwargs)
    return synthesize(small_netlist(), opts)


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(1)
        assert uf.find(3) == uf.find(4)
        assert uf.find(0) != uf.find(3)

    def test_groups(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        groups = sorted(sorted(g) for g in uf.groups().values())
        assert groups == [[0, 2], [1], [3]]


class TestLayoutCell:
    def test_layer_validation(self):
        with pytest.raises(KeyError):
            Shape(Rect(0, 0, 1, 1), "metal9", "a")

    def test_area_and_layer_area(self):
        cell = LayoutCell("c")
        cell.add_rect(Rect(0, 0, 10, 10), "metal1", "a")
        cell.add_rect(Rect(0, 0, 2, 2), "poly", "b")
        assert cell.area() == 100.0
        assert cell.layer_area("metal1") == 100.0
        assert cell.layer_area("poly") == 4.0

    def test_duplicate_device_rejected(self):
        cell = LayoutCell("c")
        cell.add_device(DeviceInfo("M1", "mosfet", ("d", "g", "s", "b")))
        with pytest.raises(ValueError):
            cell.add_device(DeviceInfo("M1", "mosfet",
                                       ("d", "g", "s", "b")))

    def test_nets_and_shapes_of_net(self):
        cell = LayoutCell("c")
        cell.add_rect(Rect(0, 0, 1, 1), "metal1", "a")
        cell.add_rect(Rect(2, 0, 3, 1), "metal1", "b")
        assert cell.nets() == ["a", "b"]
        assert len(cell.shapes_of_net("a")) == 1


class TestConnectivity:
    def test_same_layer_overlap_connects(self):
        shapes = [Shape(Rect(0, 0, 2, 1), "metal1", "a"),
                  Shape(Rect(1, 0, 3, 1), "metal1", "a")]
        comps = connected_components(shapes)
        assert len(comps) == 1

    def test_different_layer_no_connect_without_cut(self):
        shapes = [Shape(Rect(0, 0, 2, 1), "metal1", "a"),
                  Shape(Rect(0, 0, 2, 1), "poly", "b")]
        assert len(connected_components(shapes)) == 2

    def test_contact_connects_metal1_to_poly(self):
        shapes = [Shape(Rect(0, 0, 2, 1), "metal1", "a"),
                  Shape(Rect(0, 0, 2, 1), "poly", "a"),
                  Shape(Rect(0.5, 0.2, 1.0, 0.7), "contact", "a",
                        purpose="cut")]
        assert len(connected_components(shapes)) == 1

    def test_via_connects_metal1_to_metal2_only(self):
        shapes = [Shape(Rect(0, 0, 2, 1), "metal2", "a"),
                  Shape(Rect(0, 0, 2, 1), "poly", "b"),
                  Shape(Rect(0.5, 0.2, 1.0, 0.7), "via", "a",
                        purpose="cut")]
        comps = connected_components(shapes)
        assert len(comps) == 2  # via touches poly but does not connect it


class TestSynthesis:
    def test_lvs_clean(self):
        assert verify_cell(synth_small()) == []

    def test_devices_registered(self):
        cell = synth_small()
        assert set(cell.devices) >= {"M1", "M2", "R1", "C1"}
        m1 = cell.devices["M1"]
        assert m1.kind == "mosfet"
        assert m1.terminals == ("out", "in", "gnd", "gnd")
        assert m1.gate_rect is not None

    def test_mosfet_layers_by_polarity(self):
        cell = synth_small()
        assert cell.layer_area("ndiff") > 0
        assert cell.layer_area("pdiff") > 0

    def test_global_nets_full_width(self):
        cell = synth_small()
        bbox = cell.bbox()
        vdd_tracks = [s for s in cell.shapes_on("metal1")
                      if s.net == "vdd" and s.rect.width > 0.8 *
                      bbox.width]
        assert vdd_tracks, "vdd should have a full-width track"

    def test_port_anchors_created(self):
        cell = synth_small()
        assert "port:in" in cell.devices
        assert cell.devices["port:in"].kind == "port"

    def test_global_net_order_controls_track_y(self):
        """Reordering global nets reorders their tracks - the DfT lever."""
        def track_y(cell, net):
            rows = [s.rect.y0 for s in cell.shapes_on("metal1")
                    if s.net == net and s.rect.width > 30]
            return min(rows)

        a = synthesize(small_netlist(),
                       SynthOptions(global_nets=["vdd", "gnd"]))
        b = synthesize(small_netlist(),
                       SynthOptions(global_nets=["gnd", "vdd"]))
        assert track_y(a, "vdd") < track_y(a, "gnd")
        assert track_y(b, "gnd") < track_y(b, "vdd")

    def test_deterministic(self):
        a, b = synth_small(), synth_small()
        assert len(a.shapes) == len(b.shapes)
        assert [s.rect for s in a.shapes] == [s.rect for s in b.shapes]


class TestNetPartition:
    def test_cutting_track_splits_terminals(self):
        cell = synth_small()
        # the "out" net joins M1 drain, M2 drain and R1's left terminal:
        # removing its full track must split something
        track = [s for s in cell.shapes_on("metal1")
                 if s.net == "out" and s.device is None]
        assert track
        partition = net_partition_without(cell, "out", track)
        assert len(partition) >= 2

    def test_removing_nothing_keeps_net_whole(self):
        cell = synth_small()
        partition = net_partition_without(cell, "out", [])
        assert len(partition) == 1

    def test_bulk_terminals_excluded(self):
        cell = synth_small()
        partition = net_partition_without(cell, "gnd", [])
        labels = {label for group in partition for label in group}
        assert "M1:3" not in labels  # bulk terminal not an attachment
        assert "M1:2" in labels      # source terminal is
