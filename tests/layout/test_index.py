"""Tests for the spatial index: identical results, faster campaigns."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.comparator import comparator_layout
from repro.defects import analyze_defect, analyze_defects, sprinkle
from repro.layout import Disk, LayoutCell, Rect
from repro.layout.index import SpatialIndex


def grid_cell(n=6, pitch=20.0):
    cell = LayoutCell("grid")
    for k in range(n):
        cell.add_rect(Rect(0, k * pitch, 200, k * pitch + 2), "metal1",
                      f"h{k}")
        cell.add_rect(Rect(k * pitch, 0, k * pitch + 2, 120), "metal2",
                      f"v{k}")
    return cell


class TestSpatialIndex:
    def test_candidates_superset_of_hits(self):
        cell = grid_cell()
        index = SpatialIndex(cell)
        disk = Disk(50, 21, 3)
        candidates = index.candidates_for_disk("metal1", disk)
        from repro.layout import disk_intersects_rect
        true_hits = [s for s in cell.shapes_on("metal1")
                     if disk_intersects_rect(disk, s.rect)]
        assert set(id(s) for s in true_hits) <= \
            set(id(s) for s in candidates)

    def test_point_query(self):
        cell = grid_cell()
        index = SpatialIndex(cell)
        hits = [s for s in index.candidates_at_point("metal1", 50, 21)
                if s.rect.contains_point(50, 21)]
        assert len(hits) == 1
        assert hits[0].net == "h1"

    def test_unknown_layer_empty(self):
        index = SpatialIndex(grid_cell())
        assert index.candidates_for_disk("poly", Disk(0, 0, 1)) == []

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            SpatialIndex(grid_cell(), bucket=0.0)

    def test_no_duplicates_for_spanning_shape(self):
        cell = LayoutCell("one")
        cell.add_rect(Rect(0, 0, 100, 100), "metal1", "big")
        index = SpatialIndex(cell, bucket=10.0)
        candidates = index.candidates_for_disk("metal1",
                                               Disk(50, 50, 30))
        assert len(candidates) == 1

    @given(st.floats(min_value=-10, max_value=210),
           st.floats(min_value=-10, max_value=130),
           st.floats(min_value=0.3, max_value=25))
    @settings(max_examples=60, deadline=None)
    def test_narrowing_never_loses_hits(self, cx, cy, r):
        """Property: every true geometric hit is among the candidates."""
        from repro.layout import disk_intersects_rect
        cell = grid_cell()
        index = SpatialIndex(cell, bucket=13.0)
        disk = Disk(cx, cy, r)
        for layer in ("metal1", "metal2"):
            truth = {id(s) for s in cell.shapes_on(layer)
                     if disk_intersects_rect(disk, s.rect)}
            cand = {id(s) for s in index.candidates_for_disk(layer, disk)}
            assert truth <= cand


class TestIndexedAnalysisEquivalence:
    def test_identical_fault_lists(self):
        """The index is purely a speedup: byte-identical fault output."""
        cell = comparator_layout()
        defects = sprinkle(cell, 6000, seed=33)
        with_index = analyze_defects(cell, defects)
        without = [f for f in (analyze_defect(cell, d, None)
                               for d in defects) if f is not None]
        assert [f.collapse_key() for f in with_index] == \
            [f.collapse_key() for f in without]

    def test_index_is_faster_on_large_campaign(self):
        cell = comparator_layout()
        defects = sprinkle(cell, 15000, seed=44)
        index = SpatialIndex(cell)

        start = time.perf_counter()
        analyze_defects(cell, defects, index=index)
        indexed = time.perf_counter() - start

        start = time.perf_counter()
        for d in defects:
            analyze_defect(cell, d, None)
        linear = time.perf_counter() - start

        assert indexed < linear