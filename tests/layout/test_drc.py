"""Tests for the design-rule checker."""

import pytest

from repro.adc.comparator import comparator_layout
from repro.layout import LayoutCell, Rect
from repro.layout.drc import (DrcViolation, check_spacing, check_widths,
                              drc_report, rect_distance)


class TestRectDistance:
    def test_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 0, 5, 1)
        assert rect_distance(a, b) == pytest.approx(3.0)

    def test_diagonal(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 5, 6, 7)
        assert rect_distance(a, b) == pytest.approx((3 ** 2 + 4 ** 2)
                                                    ** 0.5)

    def test_touching_is_zero(self):
        assert rect_distance(Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)) == 0.0


class TestChecks:
    def cell(self, gap):
        cell = LayoutCell("drcut")
        cell.add_rect(Rect(0, 0, 20, 1.2), "metal1", "a")
        cell.add_rect(Rect(0, 1.2 + gap, 20, 2.4 + gap), "metal1", "b")
        return cell

    def test_clean_cell(self):
        cell = self.cell(gap=1.5)
        assert check_widths(cell) == []
        assert check_spacing(cell) == []

    def test_spacing_violation_found(self):
        cell = self.cell(gap=0.5)  # metal1 min space is 1.2
        violations = check_spacing(cell)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind == "spacing"
        assert v.measured == pytest.approx(0.5)
        assert v.nets == ("a", "b")

    def test_same_net_spacing_allowed(self):
        cell = LayoutCell("same")
        cell.add_rect(Rect(0, 0, 20, 1.2), "metal1", "a")
        cell.add_rect(Rect(0, 1.4, 20, 2.6), "metal1", "a")
        assert check_spacing(cell) == []

    def test_width_violation_found(self):
        cell = LayoutCell("thin")
        cell.add_rect(Rect(0, 0, 20, 0.5), "metal1", "a")  # min 1.2
        violations = check_widths(cell)
        assert len(violations) == 1
        assert violations[0].kind == "width"
        assert "width@metal1" in str(violations[0])

    def test_layer_filter(self):
        cell = self.cell(gap=0.5)
        assert check_spacing(cell, layers=("metal2",)) == []


class TestOnSynthesisedMacros:
    def test_comparator_width_clean(self):
        """The synthesiser never draws sub-minimum-width shapes."""
        assert check_widths(comparator_layout()) == []

    def test_comparator_spacing_documented_tradeoff(self):
        """The stick router packs stubs tighter than production rules;
        the checker must measure (not hide) that, and the violations
        must be spacing-only, never width."""
        cell = comparator_layout()
        spacing = check_spacing(cell)
        assert len(spacing) > 0  # the documented trade-off
        assert all(v.kind == "spacing" for v in spacing)
        report = drc_report(cell)
        assert "0 width" in report
        assert "spacing" in report
