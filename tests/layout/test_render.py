"""Tests for layout rendering and statistics."""

import pytest

from repro.adc.comparator import comparator_layout
from repro.layout import LayoutCell, Rect
from repro.layout.render import (cell_statistics, render_cell,
                                 statistics_report)


def tiny_cell():
    cell = LayoutCell("tiny")
    cell.add_rect(Rect(0, 0, 50, 2), "metal1", "a")
    cell.add_rect(Rect(0, 5, 50, 7), "metal1", "b")
    cell.add_rect(Rect(20, -2, 22, 9), "metal2", "c")
    return cell


class TestRender:
    def test_renders_tracks(self):
        art = render_cell(tiny_cell(), width=60)
        assert "-" in art     # metal1
        assert "=" in art     # metal2 overprints
        assert "tiny" in art
        assert "[" in art     # legend

    def test_layer_filter(self):
        art = render_cell(tiny_cell(), width=60, layers=["metal2"])
        assert "=" in art
        assert "-" not in art.splitlines()[1]

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            render_cell(LayoutCell("void"))

    def test_comparator_renders(self):
        art = render_cell(comparator_layout(), width=120)
        lines = art.splitlines()
        assert len(lines) > 10
        # drawn alone, the global tracks appear as long metal1 runs
        m1_only = render_cell(comparator_layout(), width=120,
                              layers=["metal1"])
        assert any(line.count("-") > 100 for line in m1_only.splitlines())


class TestStatistics:
    def test_counts(self):
        stats = cell_statistics(tiny_cell())
        assert stats.shape_count == 3
        assert stats.net_count == 3
        assert stats.layer_area["metal1"] == pytest.approx(200.0)
        assert stats.wire_length["metal1"] == pytest.approx(100.0)

    def test_comparator_statistics(self):
        stats = cell_statistics(comparator_layout())
        assert stats.device_count > 25
        assert stats.wire_length["metal1"] > 1000.0

    def test_report_table(self):
        report = statistics_report([tiny_cell(), comparator_layout()])
        assert "tiny" in report and "comparator" in report
        assert len(report.splitlines()) == 3
