"""Grid-accelerated connectivity extraction matches the all-pairs scan.

``connected_components`` replaced an O(n^2) pairwise loop with a
bucket grid plus vectorised intersection tests; the scalar predicate
``_shapes_connect`` is retained as the reference and these tests pin
exact equivalence on random soups and on the real macro layouts.
"""

import numpy as np

from repro.adc.comparator import comparator_layout
from repro.adc.ladder import ladder_slice_layout
from repro.layout import LayoutCell, Rect
from repro.layout.extract import (UnionFind, _shapes_connect,
                                  connected_components, extract_nets)
from repro.layout.index import ShapeGrid
from repro.layout.layers import CUT_CONNECTS


def brute_components(shapes):
    uf = UnionFind(len(shapes))
    for i in range(len(shapes)):
        for j in range(i + 1, len(shapes)):
            if _shapes_connect(shapes[i], shapes[j]):
                uf.union(i, j)
    return sorted(sorted(g) for g in uf.groups().values())


def random_cell(seed, n=120, extent=60.0):
    rng = np.random.default_rng(seed)
    layers = ["metal1", "metal2", "poly", "ndiff"] + \
        list(CUT_CONNECTS)
    cell = LayoutCell(f"soup{seed}")
    for k in range(n):
        x0, y0 = rng.uniform(0, extent, 2)
        w, h = rng.uniform(0.2, 6.0, 2)
        layer = layers[int(rng.integers(len(layers)))]
        cell.add_rect(Rect(x0, y0, x0 + w, y0 + h), layer, f"n{k}")
    return cell


class TestGridEquivalence:
    def test_random_soups_match_brute_force(self):
        for seed in range(6):
            shapes = random_cell(seed).shapes
            grid = sorted(sorted(g)
                          for g in connected_components(shapes))
            assert grid == brute_components(shapes), f"seed {seed}"

    def test_real_macros_match_brute_force(self):
        for cell in (comparator_layout(), ladder_slice_layout()):
            shapes = cell.shapes
            grid = sorted(sorted(g)
                          for g in connected_components(shapes))
            assert grid == brute_components(shapes), cell.name

    def test_shared_edges_connect(self):
        """Rect.intersects counts shared edges; the vectorised
        predicate must too."""
        cell = LayoutCell("abut")
        cell.add_rect(Rect(0, 0, 1, 1), "metal1", "a")
        cell.add_rect(Rect(1, 0, 2, 1), "metal1", "a")
        assert len(extract_nets(cell)) == 1


class TestShapeGrid:
    def test_intersecting_pairs_share_a_bucket(self):
        shapes = random_cell(99, n=80).shapes
        groups = [set(g) for g in ShapeGrid(shapes).candidate_groups()]
        for i in range(len(shapes)):
            for j in range(i + 1, len(shapes)):
                if shapes[i].rect.intersects(shapes[j].rect):
                    assert any(i in g and j in g for g in groups), \
                        f"pair ({i},{j}) missed by the grid"

    def test_singleton_buckets_yield_nothing(self):
        cell = LayoutCell("sparse")
        cell.add_rect(Rect(0, 0, 1, 1), "metal1", "a")
        cell.add_rect(Rect(500, 500, 501, 501), "metal1", "b")
        assert list(ShapeGrid(cell.shapes).candidate_groups()) == []

    def test_rejects_bad_bucket(self):
        try:
            ShapeGrid([], bucket=0.0)
            raise AssertionError("bucket=0 accepted")
        except ValueError:
            pass
