"""Tests for geometry primitives, including property-based checks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.layout import (Disk, Rect, bounding_box, disk_cuts_rect,
                          disk_intersects_rect, total_area)

coords = st.floats(min_value=-100.0, max_value=100.0)
positive = st.floats(min_value=0.1, max_value=50.0)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h),
        coords, coords, positive, positive)


class TestRect:
    def test_properties(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.center == (2.0, 1.0)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_intersects_and_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        c = Rect(5, 5, 6, 6)
        assert a.intersects(b)
        assert not a.intersects(c)
        assert a.intersection(b) == Rect(1, 1, 2, 2)
        assert a.intersection(c) is None

    def test_shared_edge_counts_as_intersection(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert a.intersects(b)
        assert a.intersection(b).area == 0.0

    def test_contains_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(1, 1)
        assert r.contains_point(0, 0)  # boundary
        assert not r.contains_point(3, 1)

    def test_expanded(self):
        assert Rect(0, 0, 1, 1).expanded(1.0) == Rect(-1, -1, 2, 2)

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(rects(), rects())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert inter.x0 >= max(a.x0, b.x0) - 1e-9
            assert inter.x1 <= min(a.x1, b.x1) + 1e-9
            assert a.intersects(b)


class TestDisk:
    def test_radius_positive(self):
        with pytest.raises(ValueError):
            Disk(0, 0, 0.0)

    def test_diameter(self):
        assert Disk(0, 0, 1.5).diameter == 3.0


class TestDiskRectPredicates:
    def test_disk_inside_rect_intersects(self):
        assert disk_intersects_rect(Disk(1, 1, 0.1), Rect(0, 0, 2, 2))

    def test_disk_far_away(self):
        assert not disk_intersects_rect(Disk(10, 10, 1), Rect(0, 0, 2, 2))

    def test_disk_touching_corner(self):
        # corner at (2,2); disk centred at (3,3) with r = sqrt(2)
        assert disk_intersects_rect(Disk(3, 3, math.sqrt(2) + 1e-9),
                                    Rect(0, 0, 2, 2))
        assert not disk_intersects_rect(Disk(3, 3, math.sqrt(2) - 1e-2),
                                        Rect(0, 0, 2, 2))

    def test_cut_requires_spanning_width(self):
        wire = Rect(0, 0, 20, 2)  # horizontal wire, 2 um wide
        assert disk_cuts_rect(Disk(10, 1, 1.5), wire)      # d=3 > 2, spans
        assert not disk_cuts_rect(Disk(10, 1, 0.8), wire)  # d=1.6 < 2

    def test_cut_offcentre_misses(self):
        wire = Rect(0, 0, 20, 2)
        # big disk but centred too high to cover y in [0, 2]
        assert not disk_cuts_rect(Disk(10, 2.5, 1.5), wire)

    def test_cut_vertical_wire(self):
        wire = Rect(0, 0, 2, 20)
        assert disk_cuts_rect(Disk(1, 10, 1.5), wire)
        assert not disk_cuts_rect(Disk(1, 10, 0.9), wire)

    @given(st.floats(min_value=-30, max_value=30),
           st.floats(min_value=-5, max_value=8),
           st.floats(min_value=0.1, max_value=10))
    def test_cut_implies_intersect(self, cx, cy, r):
        wire = Rect(0, 0, 20, 2)
        disk = Disk(cx, cy, r)
        if disk_cuts_rect(disk, wire):
            assert disk_intersects_rect(disk, wire)


class TestAggregates:
    def test_bounding_box(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert box == Rect(0, -1, 3, 1)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_total_area(self):
        assert total_area([Rect(0, 0, 1, 1), Rect(0, 0, 2, 2)]) == 5.0
