"""Close the loop: optimized test plan + DfT advice from one run.

Runs the comparator macro through the path at a reduced budget, then:

1. chooses the cheapest measurement subset that keeps the achievable
   coverage (the paper: "the overlap between different detection
   mechanisms gives room for the optimization of the test method");
2. diagnoses every escaped fault class and prints the resulting DfT
   recommendations (the paper's section 3.4 analysis, automated).

Takes a few minutes.  Usage::

    python examples/test_plan_and_advice.py
"""

from repro.core import DefectOrientedTestPath, PathConfig, render_advice
from repro.macrotest import macro_breakdown
from repro.testgen import full_plan_cost, optimize_test_plan


def main() -> None:
    print("running the comparator macro through the path ...")
    config = PathConfig(n_defects=9000, max_classes=22,
                        include_noncat=False)
    result = DefectOrientedTestPath(config).run(macros=["comparator"])
    analysis = result.macros["comparator"]
    comparator = analysis.result
    breakdown = macro_breakdown(comparator)
    print(f"coverage: voltage {100 * breakdown.voltage:.1f}%  "
          f"current {100 * breakdown.current:.1f}%  "
          f"total {100 * breakdown.total:.1f}%\n")

    plan = optimize_test_plan(comparator)
    print("optimized measurement plan "
          f"(naive plan: {1000 * full_plan_cost():.2f} ms):")
    print(plan.describe())

    print("\n" + render_advice(list(analysis.classes),
                               list(comparator.records),
                               comparator.total_faults))


if __name__ == "__main__":
    main()
