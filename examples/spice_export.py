"""Export the case-study macros as SPICE netlists.

Writes every macro's transistor-level netlist in Berkeley-SPICE format
(for cross-checking in ngspice or any other simulator), then
demonstrates the reverse direction: parse a hand-written deck, run it
through this library's DC analysis, and inject a fault into it.

Usage::

    python examples/spice_export.py [output_dir]
"""

import pathlib
import sys

from repro.adc.biasgen import build_biasgen
from repro.adc.clockgen import build_clockgen
from repro.adc.comparator import build_comparator
from repro.adc.ladder import build_ladder_slice
from repro.circuit import operating_point, parse_netlist, write_netlist
from repro.defects import ShortFault
from repro.faultsim import fault_models, inject

HANDWRITTEN_DECK = """bandgap-ish divider, hand written
* two stacked diodes biased through a resistor
V1 vdd 0 5
R1 vdd a 47k
D1 a b DX
D2 b 0 DX
.model DX D (IS=1e-14)
.end
"""


def main() -> None:
    out = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                       else "spice_export")
    out.mkdir(exist_ok=True)

    macros = {
        "comparator": build_comparator(),
        "comparator_dft": build_comparator(dft=True),
        "ladder_slice": build_ladder_slice(),
        "biasgen": build_biasgen(),
        "clockgen": build_clockgen(),
    }
    for name, circuit in macros.items():
        text = write_netlist(circuit)
        (out / f"{name}.sp").write_text(text)
        print(f"wrote {out / f'{name}.sp'} "
              f"({len(text.splitlines())} cards)")

    print("\nparsing a hand-written deck and solving it here:")
    circuit = parse_netlist(HANDWRITTEN_DECK)
    op = operating_point(circuit)
    print(f"  v(a) = {op.voltage('a'):.3f} V  "
          f"v(b) = {op.voltage('b'):.3f} V (two diode drops)")

    print("\ninjecting a defect-oriented fault into the parsed deck:")
    fault = ShortFault(nets=frozenset({"a", "b"}), layer="metal1",
                       resistance=0.2)
    faulty = inject(circuit, fault_models(fault)[0])
    op2 = operating_point(faulty)
    print(f"  with a-b bridged: v(a) = {op2.voltage('a'):.3f} V  "
          f"v(b) = {op2.voltage('b'):.3f} V  "
          f"(delta I through R1: "
          f"{1e6 * abs(op2.current('V1') - op.current('V1')):.1f} uA)")


if __name__ == "__main__":
    main()
