"""The paper's DfT story at a reduced Monte Carlo budget.

Runs the comparator macro through the defect-oriented path twice — once
as designed, once with both DfT measures (flipflop leak removed, bias
lines separated) — and prints the coverage improvement plus the
chip-level sampling-phase IVdd window, whose shrinkage is the mechanism.

Takes a few minutes.  Usage::

    python examples/dft_improvement.py
"""

from repro.core import DefectOrientedTestPath, PathConfig, render_fig4
from repro.macrotest import macro_breakdown
from repro.testgen import FULL_DFT, NO_DFT


def run(dft):
    config = PathConfig(n_defects=8000, max_classes=25,
                        include_noncat=False, dft=dft)
    path = DefectOrientedTestPath(config)
    analysis = path.analyze_comparator()
    window = path.comparator_engine().good_space().windows[
        ("ivdd", "sampling", "above")]
    return analysis, window


def main() -> None:
    results = {}
    for dft in (NO_DFT, FULL_DFT):
        print(f"running comparator path with {dft.label} ...")
        results[dft.label] = run(dft)

    print("\nchip-level IVdd acceptance window (sampling phase):")
    for label, (_, window) in results.items():
        width = 1000 * (window.hi - window.lo)
        print(f"  {label:14s} [{1000 * window.lo:7.2f}, "
              f"{1000 * window.hi:7.2f}] mA  (width {width:6.2f} mA)")

    print("\ncomparator-macro coverage:")
    print(f"  {'variant':14s} {'voltage':>8s} {'current':>8s} "
          f"{'total':>8s} {'escape':>8s}")
    for label, (analysis, _) in results.items():
        b = macro_breakdown(analysis.result)
        print(f"  {label:14s} {100 * b.voltage:8.1f} "
              f"{100 * b.current:8.1f} {100 * b.total:8.1f} "
              f"{100 * b.undetected:8.1f}")

    base = macro_breakdown(results["dft:none"][0].result)
    dft = macro_breakdown(results["dft:ff+bias"][0].result)
    print(f"\ncoverage gain from DfT: "
          f"{100 * (dft.total - base.total):+.1f} percentage points "
          f"(paper: 93.3% -> 99.1% globally)")


if __name__ == "__main__":
    main()
