"""Walkthrough of the reference-ladder macro analysis.

Shows the dual-ladder structure's fault behaviour at circuit level:
why an internal tap-to-tap short barely moves the terminal currents
(the coarse ladder carries the current), why a short to a rail lights
up immediately, and how the faulty tap vector propagates into missing
codes.  Finishes with the macro's layout rendered in ASCII.

Usage::

    python examples/ladder_analysis.py
"""

import numpy as np

from repro.adc.ladder import (SEGMENTS_PER_COARSE, ladder_slice_layout,
                              ladder_testbench, tap_voltages)
from repro.circuit import Resistor, VoltageSource, operating_point
from repro.layout.render import render_cell, statistics_report
from repro.macrotest import propagate_ladder_fault


def solve(fault=None):
    tb = ladder_testbench()
    tb.add(VoltageSource("VDD", "vdd", "gnd", 5.0))
    if fault is not None:
        tb.add(fault)
    op = operating_point(tb)
    taps = np.array([op.voltage(f"tap{k}") for k in range(257)])
    return {
        "taps": taps,
        "irefp": -1000 * op.current("VREFP"),
        "irefn": 1000 * op.current("VREFN"),
    }


def main() -> None:
    nominal = solve()
    print("nominal ladder: I(VREFP)=%.2f mA  I(VREFN)=%.2f mA  "
          "tap128=%.3f V" % (nominal["irefp"], nominal["irefn"],
                             nominal["taps"][128]))

    cases = [
        ("tap130-tap131 short (0.2 ohm, adjacent taps)",
         Resistor("F1", "tap130", "tap131", 0.2)),
        ("tap128-tap144 short (full coarse span)",
         Resistor("F2", "tap128", "tap144", 0.2)),
        ("tap130 to gnd short (rail bridge)",
         Resistor("F3", "tap130", "gnd", 0.2)),
        ("tap130-tap131 near-miss (500 ohm)",
         Resistor("F4", "tap130", "tap131", 500.0)),
    ]
    print(f"\n{'fault':46s} {'dIrefP':>8s} {'dIrefN':>8s} "
          f"{'missing codes?':>15s}")
    print("-" * 82)
    for label, fault in cases:
        sol = solve(fault)
        missing = propagate_ladder_fault(sol["taps"])
        print(f"{label:46s} {sol['irefp'] - nominal['irefp']:+7.2f}m "
              f"{sol['irefn'] - nominal['irefn']:+7.2f}m "
              f"{'DETECT' if missing else 'no':>15s}")

    print("\nwhy: the coarse ladder pins every "
          f"{SEGMENTS_PER_COARSE}th tap at low impedance, so internal "
          "shorts redistribute microamps (voltage-detected via the tap "
          "error), while a rail bridge pulls hundreds of mA through "
          "the reference terminals.")

    cell = ladder_slice_layout()
    print("\n" + statistics_report([cell]))
    print("\n" + render_cell(cell, width=100,
                             layers=["metal1", "poly", "contact"]))


if __name__ == "__main__":
    main()
