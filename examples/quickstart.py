"""Quickstart: the defect-oriented test path on one macro, in 5 steps.

Runs the paper's methodology (Fig. 1) end to end for the comparator
macro at a small Monte Carlo budget:

    layout -> sprinkle defects -> extract faults -> collapse ->
    simulate fault classes -> classify signatures

Takes ~1 minute.  Usage::

    python examples/quickstart.py
"""

from repro.adc.comparator import comparator_layout
from repro.core.report import render_table1
from repro.defects import analyze_defects, collapse, sprinkle
from repro.faultsim import ComparatorFaultEngine


def main() -> None:
    # 1. the macro's layout (synthesised from its transistor netlist)
    cell = comparator_layout()
    print(f"comparator layout: {len(cell.shapes)} shapes, "
          f"{len(cell.devices)} devices, {cell.area():.0f} um^2")

    # 2. Monte Carlo spot defects (VLASIC-style)
    defects = sprinkle(cell, n_defects=10000, seed=7)

    # 3. which defects actually cause circuit-level faults?
    faults = analyze_defects(cell, defects)
    print(f"{len(defects)} defects -> {len(faults)} faults "
          f"({100 * len(faults) / len(defects):.1f}% fault yield)")

    # 4. collapse equivalent faults into classes
    classes = collapse(faults)
    print(f"collapsed into {len(classes)} fault classes\n")
    print(render_table1(classes))

    # 5. analog fault simulation of the five most likely classes
    print("\nfault signatures of the top classes:")
    engine = ComparatorFaultEngine()
    for fc in classes[:5]:
        result = engine.simulate_class_signature(fc)
        mechanisms = ",".join(sorted(m.value
                                     for m in result.signature.mechanisms))
        print(f"  {str(fc):48s} -> {result.signature.voltage.value:16s}"
              f" current: {mechanisms or '-'}")


if __name__ == "__main__":
    main()
