"""Outgoing quality (DPPM) and within-die mismatch analysis.

Two analyses the methodology enables beyond raw coverage numbers:

1. What does the coverage improvement from DfT mean in *shipped
   defective parts per million*?  (Williams-Brown defect level on top of
   a Poisson yield model fed by the actual per-macro fault statistics.)
2. How much input-referred offset do fault-free comparators already
   have from within-die mismatch (Pelgrom model)?  This bounds how
   aggressive the "Offset > 8 mV" detection threshold can be.

Takes a few minutes.  Usage::

    python examples/quality_and_mismatch.py
"""

import numpy as np

from repro.adc.mismatch import offset_distribution
from repro.core import (DefectOrientedTestPath, PathConfig, dppm,
                        quality_report)
from repro.testgen import FULL_DFT, NO_DFT


def main() -> None:
    print("running a reduced-budget path for the fault statistics ...")
    config = PathConfig(n_defects=6000, max_classes=12,
                        include_noncat=False)
    result = DefectOrientedTestPath(config).run(
        macros=["comparator", "ladder", "clockgen"])
    macros = result.macro_results()

    report = quality_report(macros)
    print(f"\nmeasured quality (defect density 1/cm^2): {report}")

    print("\nshipped DPPM vs fault coverage "
          f"(process yield {100 * report.process_yield:.1f}%):")
    for coverage in (0.80, 0.933, 0.991, 0.999):
        print(f"  coverage {100 * coverage:5.1f}%  ->  "
              f"{dppm(report.process_yield, coverage):8.0f} DPPM")
    print("  (the paper's DfT step, 93.3% -> 99.1%, is a ~7x DPPM "
          "reduction)")

    print("\nwithin-die comparator offsets (Pelgrom mismatch), "
          "5 Monte Carlo instances:")
    offsets = offset_distribution(n_samples=5, seed=42, resolution=4e-3)
    for k, off in enumerate(offsets):
        print(f"  instance {k}: {1000 * off:+6.1f} mV")
    print(f"  sample sigma ~ {1000 * np.std(offsets):.1f} mV vs the "
          f"8 mV (1 LSB) offset-signature threshold")


if __name__ == "__main__":
    main()
