"""Missing-code test vs specification-oriented test on faulty ADCs.

Injects a spectrum of comparator faults into the behavioral 8-bit flash
ADC and compares what the paper's simple missing-code test catches
against a conventional static-spec test (offset / gain / INL / DNL) —
and what each costs in tester time.

Usage::

    python examples/missing_code_vs_spec_test.py
"""

from repro.adc.behavioral import ClockBehavior, ComparatorBehavior
from repro.adc.flash import nominal_adc
from repro.testgen import (defect_oriented_cost, measure_static,
                           missing_code_test, spec_test_detects,
                           specification_oriented_cost)

SCENARIOS = [
    ("fault-free", nominal_adc()),
    ("comparator 100 stuck low",
     nominal_adc().with_comparator(100, ComparatorBehavior(stuck=False))),
    ("comparator 200 stuck high",
     nominal_adc().with_comparator(200, ComparatorBehavior(stuck=True))),
    ("comparator 50: +20 mV offset (2.5 LSB)",
     nominal_adc().with_comparator(50, ComparatorBehavior(offset=0.020))),
    ("comparator 50: +3 mV offset (0.4 LSB)",
     nominal_adc().with_comparator(50, ComparatorBehavior(offset=0.003))),
    ("comparator 128: erratic band (mixed)",
     nominal_adc().with_comparator(128,
                                   ComparatorBehavior(mixed_band=0.02))),
    ("dead amplify clock",
     nominal_adc().with_clocks(ClockBehavior(phi2_ok=False))),
    ("degraded clock level (dynamic only)",
     nominal_adc().with_clocks(ClockBehavior(degraded=True))),
]


def main() -> None:
    print(f"{'scenario':42s} {'missing-code':>12s} {'spec test':>10s}")
    print("-" * 68)
    for label, adc in SCENARIOS:
        mc = missing_code_test(adc)
        spec = spec_test_detects(adc)
        print(f"{label:42s} {'DETECT' if mc.detected else 'pass':>12s} "
              f"{'DETECT' if spec else 'pass':>10s}")

    print("\ntester-time comparison:")
    defect = defect_oriented_cost()
    spec = specification_oriented_cost()
    for name, cost in (("defect-oriented (missing code + currents)",
                        defect), ("specification-oriented", spec)):
        print(f"  {name:42s} {1000 * cost.total:8.2f} ms")
        for component, seconds in cost.components.items():
            print(f"      {component:38s} {1000 * seconds:8.3f} ms")
    print(f"\n  speedup: {spec.total / defect.total:.1f}x")

    # show the spec numbers for one subtle fault
    subtle = nominal_adc().with_comparator(
        50, ComparatorBehavior(offset=0.003))
    m = measure_static(subtle)
    print(f"\nsub-LSB offset fault, spec measurements: "
          f"DNL={m.dnl:.2f} LSB, INL={m.inl:.2f} LSB, "
          f"offset={m.offset_lsb:.2f} LSB -> passes the datasheet")


if __name__ == "__main__":
    main()
