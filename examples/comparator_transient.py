"""Drive the transistor-level comparator directly with the simulator.

Shows the three-phase operation (sample, amplify, latch), the decision
for inputs above/below the reference, the class-A supply current per
phase, and what a 2-kohm gate-oxide pinhole does to all of it.

Usage::

    python examples/comparator_transient.py
"""

import numpy as np

from repro.adc.comparator import (CLOCK_PERIOD, build_testbench,
                                  phase_measure_times,
                                  regeneration_windows)
from repro.circuit import Resistor, supply_current, transient

T = CLOCK_PERIOD


def sparkline(values, width=60) -> str:
    """Tiny ASCII waveform plot."""
    blocks = " .:-=+*#%@"
    v = np.asarray(values)
    idx = np.linspace(0, len(v) - 1, width).astype(int)
    v = v[idx]
    lo, hi = float(v.min()), float(v.max())
    span = (hi - lo) or 1.0
    return "".join(blocks[int((x - lo) / span * (len(blocks) - 1))]
                   for x in v)


def run(vin: float, fault: bool = False):
    tb = build_testbench(vin=vin, vref=2.5)
    circuit = tb.circuit
    if fault:
        # gate-oxide pinhole on the input pair: 2 kohm gate-to-source
        m1 = circuit.element("M1")
        circuit.add(Resistor("FLT_pinhole", m1.nodes[1], m1.nodes[2],
                             2000.0))
    tr = transient(circuit, tstop=T, dt=1e-9,
                   fine_windows=regeneration_windows(T, 1))
    return tb, tr


def report(label: str, tb, tr) -> None:
    ivdd = supply_current(tr, "VDD")
    decision = tr.at_time("ffout", 0.97 * T) > 2.5
    phases = dict(zip(("sampling", "amplify", "latch"),
                      phase_measure_times(T, 0)))
    currents = {name: 1e6 * ivdd[int(np.argmin(np.abs(tr.times - t)))]
                for name, t in phases.items()}
    print(f"\n{label}")
    print(f"  decision: {'ABOVE' if decision else 'below'} reference")
    print("  IVdd per phase: " + "  ".join(
        f"{k}={v:7.1f} uA" for k, v in currents.items()))
    for node in ("phi1", "outp", "outn", "lp", "ffout"):
        print(f"  {node:6s} |{sparkline(tr.voltage(node))}|")


def main() -> None:
    for vin, name in ((2.6, "fault-free, vin = vref + 100 mV"),
                      (2.4, "fault-free, vin = vref - 100 mV")):
        tb, tr = run(vin)
        report(name, tb, tr)
    tb, tr = run(2.6, fault=True)
    report("gate-oxide pinhole on M1, vin = vref + 100 mV", tb, tr)


if __name__ == "__main__":
    main()
